"""Differential tests: optimized GF(256)/Reed-Solomon vs the retained reference.

The hot-path PR rewrote :mod:`repro.coding.gf256` (table-driven, row-wise
``bytes.translate`` operations) and :mod:`repro.coding.reed_solomon`
(vectorized encode, interpolate-and-verify decode with a Berlekamp-Welch
fallback).  The original element-at-a-time implementation is retained in
:mod:`repro.coding.reference` as the oracle, and this suite pins the two
byte-for-byte against each other on every path: scalar field ops over the
whole field, the polynomial helpers, encode, and decode through clean,
max-erasure, error-correcting, k=1 and failure paths.
"""

import random

import pytest

from repro.coding import Fragment, ReedSolomonCode, gf256
from repro.coding import reference

SEEDS = [2023, 2024, 2025]


# ----------------------------------------------------------------------
# Field arithmetic
# ----------------------------------------------------------------------
class TestScalarOpsMatchReference:
    def test_multiply_matches_over_the_whole_field(self):
        for a in range(256):
            row = gf256.MUL_TABLE[a]
            for b in range(256):
                expected = reference.multiply(a, b)
                assert gf256.multiply(a, b) == expected
                assert row[b] == expected

    def test_add_inverse_divide_power_match(self):
        rng = random.Random(SEEDS[0])
        for _ in range(2000):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf256.add(a, b) == reference.add(a, b)
            assert gf256.subtract(a, b) == reference.subtract(a, b)
            if a:
                assert gf256.inverse(a) == reference.inverse(a)
                assert gf256.divide(b, a) == reference.divide(b, a)
                exponent = rng.randrange(-300, 300)
                assert gf256.power(a, exponent) == reference.power(a, exponent)

    def test_boundary_validation_matches(self):
        for bad in (-1, 256, 1000):
            with pytest.raises(ValueError):
                gf256.add(bad, 0)
            with pytest.raises(ValueError):
                gf256.multiply(bad, 1)
            with pytest.raises(ValueError):
                gf256.scalar_multiply_row(bad, b"\x01")
        with pytest.raises(ZeroDivisionError):
            gf256.inverse(0)
        with pytest.raises(ZeroDivisionError):
            gf256.power(0, -1)

    def test_row_operations_match_scalar_loops(self):
        rng = random.Random(SEEDS[1])
        for _ in range(50):
            scalar = rng.randrange(256)
            row = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 200)))
            expected = bytes(reference.multiply(scalar, value) for value in row)
            assert gf256.scalar_multiply_row(scalar, row) == expected
        left = bytes(rng.randrange(256) for _ in range(64))
        right = bytes(rng.randrange(256) for _ in range(64))
        assert gf256.xor_rows(left, right) == bytes(a ^ b for a, b in zip(left, right))
        with pytest.raises(ValueError):
            gf256.xor_rows(b"\x00", b"\x00\x00")


@pytest.mark.parametrize("seed", SEEDS)
class TestPolynomialHelpersMatchReference:
    def test_poly_helpers(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            p = [rng.randrange(256) for _ in range(rng.randrange(1, 12))]
            q = [rng.randrange(256) for _ in range(rng.randrange(1, 12))]
            x = rng.randrange(256)
            assert gf256.poly_eval(p, x) == reference.poly_eval(p, x)
            assert gf256.poly_add(p, q) == reference.poly_add(p, q)
            assert gf256.poly_multiply(p, q) == reference.poly_multiply(p, q)
            assert gf256.poly_divmod(p, q) == reference.poly_divmod(p, q)

    def test_poly_eval_accepts_any_sequence_without_copying(self, seed):
        rng = random.Random(seed)
        coefficients = bytes(rng.randrange(256) for _ in range(8))
        x = rng.randrange(256)
        assert gf256.poly_eval(coefficients, x) == reference.poly_eval(list(coefficients), x)
        assert gf256.poly_eval(tuple(coefficients), x) == reference.poly_eval(list(coefficients), x)


# ----------------------------------------------------------------------
# Reed-Solomon codec
# ----------------------------------------------------------------------
def _pair(n, k):
    return (
        ReedSolomonCode(total_symbols=n, data_symbols=k),
        reference.ReferenceReedSolomonCode(total_symbols=n, data_symbols=k),
    )


def _corrupt(fragments, indices, shift=101):
    corrupted = list(fragments)
    for index in indices:
        fragment = corrupted[index]
        corrupted[index] = Fragment(
            index=fragment.index,
            symbols=tuple((symbol + shift) % 256 for symbol in fragment.symbols),
            blob_length=fragment.blob_length,
        )
    return corrupted


def _outcome(codec, fragments):
    try:
        return ("ok", codec.decode(fragments))
    except Exception as error:  # noqa: BLE001 - parity includes the failure mode
        return (type(error).__name__, str(error))


@pytest.mark.parametrize("seed", SEEDS)
class TestCodecMatchesReference:
    def test_encode_byte_identical_across_shapes(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randrange(1, 28)
            k = rng.randrange(1, n + 1)
            optimized, oracle = _pair(n, k)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 150)))
            assert optimized.encode(blob) == oracle.encode(blob)

    def test_decode_parity_under_random_erasure_and_corruption(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randrange(2, 24)
            k = rng.randrange(1, n + 1)
            optimized, oracle = _pair(n, k)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 100)))
            fragments = optimized.encode(blob)
            received_count = rng.randrange(k, n + 1)
            received = rng.sample(fragments, received_count)
            # Anywhere from decodable to undecodable corruption levels.
            corruption = rng.randrange(0, min(received_count, (received_count - k) // 2 + 2))
            received = _corrupt(received, range(corruption))
            assert _outcome(optimized, received) == _outcome(oracle, received)

    def test_k_equals_one_paths(self, seed):
        rng = random.Random(seed)
        optimized, oracle = _pair(7, 1)
        blob = bytes(rng.randrange(256) for _ in range(25))
        fragments = optimized.encode(blob)
        assert fragments == oracle.encode(blob)
        assert optimized.decode(fragments[3:4]) == oracle.decode(fragments[3:4]) == blob
        corrupted = _corrupt(fragments, (0, 1, 2))
        assert _outcome(optimized, corrupted) == _outcome(oracle, corrupted)

    def test_max_erasure_exactly_k_fragments(self, seed):
        rng = random.Random(seed)
        for n, k in ((7, 3), (10, 4), (5, 5)):
            optimized, oracle = _pair(n, k)
            blob = bytes(rng.randrange(256) for _ in range(3 * k + 1))
            fragments = optimized.encode(blob)
            subset = rng.sample(fragments, k)
            assert optimized.decode(subset) == oracle.decode(subset) == blob

    def test_error_correction_at_the_exact_bw_bound(self, seed):
        rng = random.Random(seed)
        n, k = 12, 4
        optimized, oracle = _pair(n, k)
        blob = bytes(rng.randrange(256) for _ in range(40))
        fragments = optimized.encode(blob)
        budget = optimized.max_correctable_errors(n)  # (12 - 4) // 2 == 4
        at_bound = _corrupt(fragments, range(budget))
        assert optimized.decode(at_bound) == oracle.decode(at_bound) == blob
        beyond = _corrupt(fragments, range(budget + 1))
        assert _outcome(optimized, beyond) == _outcome(oracle, beyond)

    def test_length_lies_and_shape_mismatches(self, seed):
        rng = random.Random(seed)
        optimized, oracle = _pair(7, 3)
        blob = bytes(rng.randrange(256) for _ in range(31))
        fragments = list(optimized.encode(blob))
        fragments[0] = Fragment(index=0, symbols=fragments[0].symbols, blob_length=9999)
        fragments[1] = Fragment(index=1, symbols=fragments[1].symbols[:-2], blob_length=31)
        assert _outcome(optimized, fragments) == _outcome(oracle, fragments)
        assert optimized.decode(fragments) == blob

    def test_empty_blob_and_insufficient_fragments(self, seed):
        optimized, oracle = _pair(4, 2)
        fragments = optimized.encode(b"")
        assert fragments == oracle.encode(b"")
        assert optimized.decode(fragments) == oracle.decode(fragments) == b""
        assert _outcome(optimized, fragments[:1]) == _outcome(oracle, fragments[:1])
        assert _outcome(optimized, []) == _outcome(oracle, [])
