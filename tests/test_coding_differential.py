"""Differential tests: a three-way oracle over the coding implementations.

The hot-path PR rewrote :mod:`repro.coding.gf256` (table-driven, row-wise
``bytes.translate`` operations) and :mod:`repro.coding.reed_solomon`
(vectorized encode, interpolate-and-verify decode with a Berlekamp-Welch
fallback); a later PR added :mod:`repro.coding.np_backend` (batched numpy
gathers over the same tables).  The original element-at-a-time
implementation is retained in :mod:`repro.coding.reference` as the oracle,
and this suite pins all three byte-for-byte against each other on every
path: scalar field ops over the whole field, the row and matrix kernels
(including non-contiguous views), the polynomial helpers, encode, and
decode through clean, max-erasure, error-correcting, k=1 and failure
paths — plus the backend-selection contract itself (environment
resolution, explicit-request failures, the ``auto`` size crossover).

The numpy legs skip cleanly when numpy is not importable (the ``no-numpy``
CI job runs exactly that configuration to prove the table fallback is
complete).
"""

import random

import pytest

from repro.coding import Fragment, ReedSolomonCode, gf256, np_backend
from repro.coding import reference
from repro.coding.reed_solomon import DecodingError

SEEDS = [2023, 2024, 2025]

requires_numpy = pytest.mark.skipif(
    not np_backend.numpy_available(), reason="numpy not importable; table fallback covered elsewhere"
)


# ----------------------------------------------------------------------
# Field arithmetic
# ----------------------------------------------------------------------
class TestScalarOpsMatchReference:
    def test_multiply_matches_over_the_whole_field(self):
        for a in range(256):
            row = gf256.MUL_TABLE[a]
            for b in range(256):
                expected = reference.multiply(a, b)
                assert gf256.multiply(a, b) == expected
                assert row[b] == expected

    def test_add_inverse_divide_power_match(self):
        rng = random.Random(SEEDS[0])
        for _ in range(2000):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf256.add(a, b) == reference.add(a, b)
            assert gf256.subtract(a, b) == reference.subtract(a, b)
            if a:
                assert gf256.inverse(a) == reference.inverse(a)
                assert gf256.divide(b, a) == reference.divide(b, a)
                exponent = rng.randrange(-300, 300)
                assert gf256.power(a, exponent) == reference.power(a, exponent)

    def test_boundary_validation_matches(self):
        for bad in (-1, 256, 1000):
            with pytest.raises(ValueError):
                gf256.add(bad, 0)
            with pytest.raises(ValueError):
                gf256.multiply(bad, 1)
            with pytest.raises(ValueError):
                gf256.scalar_multiply_row(bad, b"\x01")
        with pytest.raises(ZeroDivisionError):
            gf256.inverse(0)
        with pytest.raises(ZeroDivisionError):
            gf256.power(0, -1)

    def test_row_operations_match_scalar_loops(self):
        rng = random.Random(SEEDS[1])
        for _ in range(50):
            scalar = rng.randrange(256)
            row = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 200)))
            expected = bytes(reference.multiply(scalar, value) for value in row)
            assert gf256.scalar_multiply_row(scalar, row) == expected
        left = bytes(rng.randrange(256) for _ in range(64))
        right = bytes(rng.randrange(256) for _ in range(64))
        assert gf256.xor_rows(left, right) == bytes(a ^ b for a, b in zip(left, right))
        with pytest.raises(ValueError):
            gf256.xor_rows(b"\x00", b"\x00\x00")


@pytest.mark.parametrize("seed", SEEDS)
class TestPolynomialHelpersMatchReference:
    def test_poly_helpers(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            p = [rng.randrange(256) for _ in range(rng.randrange(1, 12))]
            q = [rng.randrange(256) for _ in range(rng.randrange(1, 12))]
            x = rng.randrange(256)
            assert gf256.poly_eval(p, x) == reference.poly_eval(p, x)
            assert gf256.poly_add(p, q) == reference.poly_add(p, q)
            assert gf256.poly_multiply(p, q) == reference.poly_multiply(p, q)
            assert gf256.poly_divmod(p, q) == reference.poly_divmod(p, q)

    def test_poly_eval_accepts_any_sequence_without_copying(self, seed):
        rng = random.Random(seed)
        coefficients = bytes(rng.randrange(256) for _ in range(8))
        x = rng.randrange(256)
        assert gf256.poly_eval(coefficients, x) == reference.poly_eval(list(coefficients), x)
        assert gf256.poly_eval(tuple(coefficients), x) == reference.poly_eval(list(coefficients), x)


# ----------------------------------------------------------------------
# Reed-Solomon codec
# ----------------------------------------------------------------------
def _pair(n, k):
    return (
        ReedSolomonCode(total_symbols=n, data_symbols=k),
        reference.ReferenceReedSolomonCode(total_symbols=n, data_symbols=k),
    )


def _corrupt(fragments, indices, shift=101):
    corrupted = list(fragments)
    for index in indices:
        fragment = corrupted[index]
        corrupted[index] = Fragment(
            index=fragment.index,
            symbols=tuple((symbol + shift) % 256 for symbol in fragment.symbols),
            blob_length=fragment.blob_length,
        )
    return corrupted


def _outcome(codec, fragments):
    try:
        return ("ok", codec.decode(fragments))
    except Exception as error:  # noqa: BLE001 - parity includes the failure mode
        return (type(error).__name__, str(error))


@pytest.mark.parametrize("seed", SEEDS)
class TestCodecMatchesReference:
    def test_encode_byte_identical_across_shapes(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randrange(1, 28)
            k = rng.randrange(1, n + 1)
            optimized, oracle = _pair(n, k)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 150)))
            assert optimized.encode(blob) == oracle.encode(blob)

    def test_decode_parity_under_random_erasure_and_corruption(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randrange(2, 24)
            k = rng.randrange(1, n + 1)
            optimized, oracle = _pair(n, k)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 100)))
            fragments = optimized.encode(blob)
            received_count = rng.randrange(k, n + 1)
            received = rng.sample(fragments, received_count)
            # Anywhere from decodable to undecodable corruption levels.
            corruption = rng.randrange(0, min(received_count, (received_count - k) // 2 + 2))
            received = _corrupt(received, range(corruption))
            assert _outcome(optimized, received) == _outcome(oracle, received)

    def test_k_equals_one_paths(self, seed):
        rng = random.Random(seed)
        optimized, oracle = _pair(7, 1)
        blob = bytes(rng.randrange(256) for _ in range(25))
        fragments = optimized.encode(blob)
        assert fragments == oracle.encode(blob)
        assert optimized.decode(fragments[3:4]) == oracle.decode(fragments[3:4]) == blob
        corrupted = _corrupt(fragments, (0, 1, 2))
        assert _outcome(optimized, corrupted) == _outcome(oracle, corrupted)

    def test_max_erasure_exactly_k_fragments(self, seed):
        rng = random.Random(seed)
        for n, k in ((7, 3), (10, 4), (5, 5)):
            optimized, oracle = _pair(n, k)
            blob = bytes(rng.randrange(256) for _ in range(3 * k + 1))
            fragments = optimized.encode(blob)
            subset = rng.sample(fragments, k)
            assert optimized.decode(subset) == oracle.decode(subset) == blob

    def test_error_correction_at_the_exact_bw_bound(self, seed):
        rng = random.Random(seed)
        n, k = 12, 4
        optimized, oracle = _pair(n, k)
        blob = bytes(rng.randrange(256) for _ in range(40))
        fragments = optimized.encode(blob)
        budget = optimized.max_correctable_errors(n)  # (12 - 4) // 2 == 4
        at_bound = _corrupt(fragments, range(budget))
        assert optimized.decode(at_bound) == oracle.decode(at_bound) == blob
        beyond = _corrupt(fragments, range(budget + 1))
        assert _outcome(optimized, beyond) == _outcome(oracle, beyond)

    def test_length_lies_and_shape_mismatches(self, seed):
        rng = random.Random(seed)
        optimized, oracle = _pair(7, 3)
        blob = bytes(rng.randrange(256) for _ in range(31))
        fragments = list(optimized.encode(blob))
        fragments[0] = Fragment(index=0, symbols=fragments[0].symbols, blob_length=9999)
        fragments[1] = Fragment(index=1, symbols=fragments[1].symbols[:-2], blob_length=31)
        assert _outcome(optimized, fragments) == _outcome(oracle, fragments)
        assert optimized.decode(fragments) == blob

    def test_empty_blob_and_insufficient_fragments(self, seed):
        optimized, oracle = _pair(4, 2)
        fragments = optimized.encode(b"")
        assert fragments == oracle.encode(b"")
        assert optimized.decode(fragments) == oracle.decode(fragments) == b""
        assert _outcome(optimized, fragments[:1]) == _outcome(oracle, fragments[:1])
        assert _outcome(optimized, []) == _outcome(oracle, [])


# ----------------------------------------------------------------------
# Backend selection contract
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_unknown_backend_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown coding backend"):
            np_backend.resolve_backend("vectorized")
        with pytest.raises(ValueError, match="unknown coding backend"):
            ReedSolomonCode(total_symbols=4, data_symbols=2, backend="cuda")

    def test_environment_variable_is_read_when_no_explicit_name(self, monkeypatch):
        monkeypatch.setenv(np_backend.BACKEND_ENV, "table")
        assert np_backend.resolve_backend() == np_backend.BACKEND_TABLE
        monkeypatch.setenv(np_backend.BACKEND_ENV, " TABLE ")
        assert np_backend.resolve_backend() == np_backend.BACKEND_TABLE
        monkeypatch.setenv(np_backend.BACKEND_ENV, "")
        assert np_backend.resolve_backend() in (np_backend.BACKEND_AUTO, np_backend.BACKEND_TABLE)
        monkeypatch.delenv(np_backend.BACKEND_ENV, raising=False)
        # Explicit names win over the environment.
        monkeypatch.setenv(np_backend.BACKEND_ENV, "bogus")
        assert np_backend.resolve_backend("table") == np_backend.BACKEND_TABLE

    def test_missing_numpy_degrades_auto_but_fails_explicit_requests(self, monkeypatch):
        monkeypatch.setattr(np_backend, "_np", None)
        assert not np_backend.numpy_available()
        assert np_backend.resolve_backend("auto") == np_backend.BACKEND_TABLE
        assert np_backend.resolve_backend("table") == np_backend.BACKEND_TABLE
        with pytest.raises(np_backend.BackendUnavailableError):
            np_backend.resolve_backend("numpy")
        assert not np_backend.use_numpy(np_backend.BACKEND_AUTO, 10**6)

    def test_auto_crossover_routes_by_chunk_count(self):
        assert not np_backend.use_numpy(np_backend.BACKEND_TABLE, 10**6)
        if np_backend.numpy_available():
            assert np_backend.use_numpy(np_backend.BACKEND_NUMPY, 1)
            assert not np_backend.use_numpy(np_backend.BACKEND_AUTO, np_backend.NUMPY_MIN_CHUNKS - 1)
            assert np_backend.use_numpy(np_backend.BACKEND_AUTO, np_backend.NUMPY_MIN_CHUNKS)

    def test_codec_resolves_backend_at_construction(self):
        assert ReedSolomonCode(4, 2, backend="table").backend == np_backend.BACKEND_TABLE
        default = ReedSolomonCode(4, 2)
        assert default.backend == np_backend.DEFAULT_BACKEND


# ----------------------------------------------------------------------
# Numpy kernels vs the scalar reference (elementwise surface)
# ----------------------------------------------------------------------
@requires_numpy
class TestNumpyKernelsMatchReference:
    def test_product_and_inverse_tables_match_over_the_whole_field(self):
        for a in range(256):
            assert bytes(np_backend.MUL_NP[a]) == gf256.MUL_TABLE[a]
        assert bytes(np_backend.INV_NP) == gf256._INVERSE
        assert int(np_backend.multiply(7, 9)) == reference.multiply(7, 9)
        assert int(np_backend.inverse(7)) == reference.inverse(7)
        with pytest.raises(ZeroDivisionError):
            np_backend.inverse([1, 0, 2])

    def test_row_twins_match_table_and_reference(self):
        rng = random.Random(SEEDS[0])
        for _ in range(60):
            scalar = rng.randrange(256)
            row = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 120)))
            expected = gf256.scalar_multiply_row(scalar, row)
            assert np_backend.scalar_multiply_row(scalar, row) == expected
            assert expected == bytes(reference.multiply(scalar, value) for value in row)
        left = bytes(rng.randrange(256) for _ in range(48))
        right = bytes(rng.randrange(256) for _ in range(48))
        assert np_backend.xor_rows(left, right) == gf256.xor_rows(left, right)
        with pytest.raises(ValueError, match="row lengths differ"):
            np_backend.xor_rows(b"\x00", b"\x00\x00")
        with pytest.raises(ValueError):
            np_backend.scalar_multiply_row(256, b"\x01")

    def test_row_twins_accept_non_contiguous_views(self):
        rng = random.Random(SEEDS[1])
        backing = bytes(rng.randrange(256) for _ in range(200))
        strided = memoryview(backing)[::3]  # non-contiguous view
        scalar = rng.randrange(1, 256)
        assert np_backend.scalar_multiply_row(scalar, strided) == gf256.scalar_multiply_row(
            scalar, bytes(strided)
        )
        other = bytes(rng.randrange(256) for _ in range(len(strided)))
        assert np_backend.xor_rows(strided, other) == gf256.xor_rows(bytes(strided), other)
        matrix = np_backend.rows_matrix([strided, other])
        assert matrix.shape == (2, len(strided))
        assert matrix.tobytes() == bytes(strided) + other

    def test_poly_eval_rows_matches_reference_pointwise(self):
        rng = random.Random(SEEDS[2])
        for _ in range(30):
            k = rng.randrange(1, 9)
            width = rng.randrange(1, 40)
            rows = [bytes(rng.randrange(256) for _ in range(width)) for _ in range(k)]
            points = [rng.randrange(256) for _ in range(rng.randrange(1, 12))]
            evaluated = np_backend.poly_eval_rows(rows, points)
            assert evaluated.shape == (len(points), width)
            for point_index, x in enumerate(points):
                for chunk in range(width):
                    coefficients = [rows[degree][chunk] for degree in range(k)]
                    assert evaluated[point_index, chunk] == reference.poly_eval(coefficients, x)

    def test_apply_basis_matches_scalar_interpolation(self):
        rng = random.Random(SEEDS[0])
        codec = ReedSolomonCode(total_symbols=9, data_symbols=4, backend="table")
        points = tuple(codec.evaluation_points[:4])
        basis = codec._interpolation_basis(points)
        symbol_rows = [bytes(rng.randrange(256) for _ in range(25)) for _ in range(4)]
        coefficients = np_backend.apply_basis(basis, symbol_rows)
        for chunk in range(25):
            expected = [0, 0, 0, 0]
            for row, weights in enumerate(basis):
                for col, weight in enumerate(weights):
                    expected[row] = reference.add(
                        expected[row], reference.multiply(weight, symbol_rows[col][chunk])
                    )
            assert list(coefficients[:, chunk]) == expected


# ----------------------------------------------------------------------
# Three-way codec oracle: numpy == table == reference
# ----------------------------------------------------------------------
def _triple(n, k):
    """Codec instances pinned to each backend plus the scalar oracle."""
    return (
        ReedSolomonCode(total_symbols=n, data_symbols=k, backend="numpy"),
        ReedSolomonCode(total_symbols=n, data_symbols=k, backend="table"),
        reference.ReferenceReedSolomonCode(total_symbols=n, data_symbols=k),
    )


def _corrupt_scattered(fragments, rng, flips):
    """XOR random single symbols: per-chunk corruption no window scan can dodge."""
    corrupted = [
        [list(fragment.symbols), fragment.index, fragment.blob_length] for fragment in fragments
    ]
    for _ in range(flips):
        target = rng.randrange(len(corrupted))
        symbols = corrupted[target][0]
        if symbols:
            symbols[rng.randrange(len(symbols))] ^= rng.randrange(1, 256)
    return [
        Fragment(index=index, symbols=tuple(symbols), blob_length=blob_length)
        for symbols, index, blob_length in corrupted
    ]


@requires_numpy
@pytest.mark.parametrize("seed", SEEDS)
class TestThreeWayCodecOracle:
    def test_encode_byte_identical_across_backends(self, seed):
        rng = random.Random(seed)
        for _ in range(30):
            n = rng.randrange(1, 28)
            k = rng.randrange(1, n + 1)
            numpy_codec, table_codec, oracle = _triple(n, k)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 200)))
            fragments = numpy_codec.encode(blob)
            assert fragments == table_codec.encode(blob) == oracle.encode(blob)

    def test_decode_parity_under_random_erasure_and_corruption(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            n = rng.randrange(2, 24)
            k = rng.randrange(1, n + 1)
            numpy_codec, table_codec, oracle = _triple(n, k)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 120)))
            fragments = numpy_codec.encode(blob)
            received_count = rng.randrange(k, n + 1)
            received = rng.sample(fragments, received_count)
            if rng.random() < 0.5:
                # Whole-fragment corruption (the window scan's home turf).
                corruption = rng.randrange(0, min(received_count, (received_count - k) // 2 + 2))
                received = _corrupt(received, range(corruption))
            else:
                # Scattered per-chunk corruption (forces the batched BW fallback).
                received = _corrupt_scattered(received, rng, rng.randrange(0, 2 * n))
            expected = _outcome(oracle, received)
            assert _outcome(numpy_codec, received) == expected
            assert _outcome(table_codec, received) == expected

    def test_edge_blobs_empty_single_byte_and_k1(self, seed):
        rng = random.Random(seed)
        for n, k in ((1, 1), (5, 1), (4, 2), (7, 3)):
            numpy_codec, table_codec, oracle = _triple(n, k)
            for blob in (b"", b"\x00", bytes([rng.randrange(256)]), b"\xff" * k):
                fragments = numpy_codec.encode(blob)
                assert fragments == table_codec.encode(blob) == oracle.encode(blob)
                assert (
                    numpy_codec.decode(fragments)
                    == table_codec.decode(fragments)
                    == oracle.decode(fragments)
                    == blob
                )
                subset = rng.sample(fragments, k)
                assert numpy_codec.decode(subset) == table_codec.decode(subset) == blob

    def test_length_lies_and_failure_modes_match(self, seed):
        rng = random.Random(seed)
        numpy_codec, table_codec, oracle = _triple(8, 3)
        blob = bytes(rng.randrange(256) for _ in range(41))
        fragments = list(numpy_codec.encode(blob))
        fragments[0] = Fragment(index=0, symbols=fragments[0].symbols, blob_length=7777)
        fragments[1] = Fragment(index=1, symbols=fragments[1].symbols[:-1], blob_length=41)
        expected = _outcome(oracle, fragments)
        assert _outcome(numpy_codec, fragments) == _outcome(table_codec, fragments) == expected
        # Too few fragments and over-capacity corruption fail identically.
        assert _outcome(numpy_codec, fragments[:2]) == _outcome(oracle, fragments[:2])
        hopeless = _corrupt(numpy_codec.encode(blob), range(6))
        assert _outcome(numpy_codec, hopeless) == _outcome(table_codec, hopeless) == _outcome(
            oracle, hopeless
        )

    def test_auto_backend_matches_forced_backends_across_the_crossover(self, seed):
        rng = random.Random(seed)
        auto_codec = ReedSolomonCode(total_symbols=9, data_symbols=4, backend="auto")
        numpy_codec, table_codec, _oracle = _triple(9, 4)
        crossover_bytes = np_backend.NUMPY_MIN_CHUNKS * 4
        for size in (crossover_bytes - 5, crossover_bytes, crossover_bytes * 3):
            blob = bytes(rng.randrange(256) for _ in range(size))
            fragments = auto_codec.encode(blob)
            assert fragments == numpy_codec.encode(blob) == table_codec.encode(blob)
            damaged = _corrupt(rng.sample(fragments, 8), range(2))
            assert (
                auto_codec.decode(damaged)
                == numpy_codec.decode(damaged)
                == table_codec.decode(damaged)
                == blob
            )


# ----------------------------------------------------------------------
# The batched Berlekamp-Welch fallback (chunks the window scan cannot solve)
# ----------------------------------------------------------------------
@requires_numpy
class TestNumpyBerlekampWelchFallback:
    def test_scattered_errors_reach_the_fallback_and_still_match(self, monkeypatch):
        # n=12, k=3: corrupting rows {2, 5, 8, 11} of *every* chunk leaves no
        # clean length-3 window, yet stays within max_errors = (12-3)//2 = 4.
        numpy_codec, table_codec, oracle = _triple(12, 3)
        rng = random.Random(99)
        blob = bytes(rng.randrange(256) for _ in range(60))
        fragments = numpy_codec.encode(blob)
        damaged = []
        for fragment in fragments:
            if fragment.index in (2, 5, 8, 11):
                symbols = tuple((symbol ^ 0x5A) for symbol in fragment.symbols)
                fragment = Fragment(
                    index=fragment.index, symbols=symbols, blob_length=fragment.blob_length
                )
            damaged.append(fragment)
        calls = []
        real_batch = np_backend.berlekamp_welch_batch
        monkeypatch.setattr(
            np_backend,
            "berlekamp_welch_batch",
            lambda *args, **kwargs: calls.append(1) or real_batch(*args, **kwargs),
        )
        assert numpy_codec.decode(damaged) == blob
        assert calls, "scattered corruption must exercise the batched BW fallback"
        assert table_codec.decode(damaged) == oracle.decode(damaged) == blob

    def test_fallback_failure_raises_the_identical_error(self):
        numpy_codec, table_codec, oracle = _triple(6, 4)
        rng = random.Random(7)
        blob = bytes(rng.randrange(256) for _ in range(30))
        ruined = _corrupt_scattered(numpy_codec.encode(blob), rng, 40)
        expected = _outcome(oracle, ruined)
        if expected[0] == "ok":  # pragma: no cover - seed chosen to corrupt
            pytest.skip("seed failed to ruin the codeword")
        assert expected[0] == DecodingError.__name__
        assert _outcome(numpy_codec, ruined) == _outcome(table_codec, ruined) == expected

    def test_direct_batch_solver_matches_scalar_berlekamp_welch(self):
        rng = random.Random(SEEDS[0])
        codec = ReedSolomonCode(total_symbols=10, data_symbols=4, backend="table")
        for _ in range(25):
            blob = bytes(rng.randrange(256) for _ in range(20))
            fragments = codec.encode(blob)
            received = rng.sample(fragments, rng.randrange(4, 11))
            flips = rng.randrange(0, 3 * len(received))
            received = _corrupt_scattered(received, rng, flips)
            points = [codec.evaluation_points[f.index] for f in received]
            chunk_count = len(received[0].symbols)
            symbol_rows = [bytes(f.symbols) for f in received]
            scalar_outcome = []
            for chunk in range(chunk_count):
                column = [f.symbols[chunk] for f in received]
                try:
                    scalar_outcome.append(tuple(codec._berlekamp_welch(points, column)))
                except DecodingError:
                    scalar_outcome.append("fail")
            try:
                batch = np_backend.berlekamp_welch_batch(points, 4, symbol_rows)
                batch_outcome = [tuple(int(v) for v in batch[:, c]) for c in range(chunk_count)]
            except DecodingError:
                batch_outcome = None
            if "fail" in scalar_outcome:
                assert batch_outcome is None
            else:
                assert batch_outcome == scalar_outcome
