"""Tests for the solvability classifier (Theorems 1, 3 and 5)."""

import pytest

from repro.core import (
    ConstantValidity,
    ConvexHullValidity,
    CorrectProposalValidity,
    FreeValidity,
    InputConfiguration,
    MedianValidity,
    StrongValidity,
    SystemConfig,
    TableValidity,
    WeakValidity,
    classify,
    count_validity_properties,
    enumerate_validity_properties,
    is_solvable,
)

BINARY = [0, 1]


class TestClassifierKnownResults:
    """The classifier must reproduce the solvability results known from the literature."""

    def test_strong_validity_solvable_iff_n_gt_3t(self):
        assert is_solvable(StrongValidity(BINARY), SystemConfig(4, 1), BINARY)
        assert not is_solvable(StrongValidity(BINARY), SystemConfig(3, 1), BINARY)
        assert not is_solvable(StrongValidity(BINARY), SystemConfig(6, 2), BINARY)

    def test_weak_validity_solvable_iff_n_gt_3t(self):
        assert is_solvable(WeakValidity(SystemConfig(4, 1), BINARY), SystemConfig(4, 1), BINARY)
        assert not is_solvable(WeakValidity(SystemConfig(3, 1), BINARY), SystemConfig(3, 1), BINARY)

    def test_trivial_properties_solvable_even_when_n_le_3t(self):
        system = SystemConfig(3, 1)
        assert is_solvable(ConstantValidity(0, BINARY), system, BINARY)
        assert is_solvable(FreeValidity(BINARY), system, BINARY)

    def test_correct_proposal_reproduces_fitzi_garay_threshold(self):
        """Strong consensus (Correct-Proposal Validity) is solvable iff n > (|V|+1)t."""
        system = SystemConfig(4, 1)
        assert is_solvable(CorrectProposalValidity([0, 1]), system, [0, 1])
        assert not is_solvable(CorrectProposalValidity([0, 1, 2]), system, [0, 1, 2])
        larger = SystemConfig(5, 1)
        assert is_solvable(CorrectProposalValidity([0, 1, 2]), larger, [0, 1, 2])

    def test_convex_hull_solvable_with_n_gt_3t(self):
        assert is_solvable(ConvexHullValidity([0, 1, 2]), SystemConfig(4, 1), [0, 1, 2])

    def test_median_validity_radius_zero_unsolvable(self):
        # Pinning the exact median cannot tolerate a Byzantine reshuffle of the
        # similarity neighbourhood: it fails C_S.
        assert not is_solvable(MedianValidity(0, [0, 1, 2]), SystemConfig(4, 1), [0, 1, 2])


class TestClassificationStructure:
    def test_reason_mentions_relevant_theorem(self):
        trivial = classify(ConstantValidity(0, BINARY), SystemConfig(3, 1), BINARY)
        assert "Theorem 2" in trivial.reason
        unsolvable_low_resilience = classify(StrongValidity(BINARY), SystemConfig(3, 1), BINARY)
        assert "Theorem 1" in unsolvable_low_resilience.reason
        solvable = classify(StrongValidity(BINARY), SystemConfig(4, 1), BINARY)
        assert "Theorem 5" in solvable.reason
        unsolvable_cs = classify(CorrectProposalValidity([0, 1, 2]), SystemConfig(4, 1), [0, 1, 2])
        assert "Theorem 3" in unsolvable_cs.reason

    def test_trivial_implies_solvable(self):
        for system in [SystemConfig(3, 1), SystemConfig(4, 1), SystemConfig(6, 2)]:
            result = classify(ConstantValidity(0, BINARY), system, BINARY)
            assert result.trivial and result.solvable

    def test_solvable_implies_similarity_condition(self):
        """Theorem 3: C_S is necessary for solvability (for every n, t)."""
        properties = [
            StrongValidity(BINARY),
            WeakValidity(SystemConfig(4, 1), BINARY),
            ConstantValidity(0, BINARY),
            FreeValidity(BINARY),
            CorrectProposalValidity(BINARY),
        ]
        for prop in properties:
            for system in [SystemConfig(3, 1), SystemConfig(4, 1)]:
                result = classify(prop, system, BINARY)
                if result.solvable:
                    assert result.satisfies_similarity_condition

    def test_classification_carries_lambda_table_when_solvable_nontrivial(self):
        result = classify(StrongValidity(BINARY), SystemConfig(4, 1), BINARY)
        assert result.solvable and not result.trivial
        assert result.similarity.lambda_table


class TestTheorem1OverEnumeratedProperties:
    """Exhaustively sample tiny validity properties and check the paper's dichotomy."""

    def test_with_n_le_3t_every_sampled_solvable_property_is_trivial(self):
        # With n <= 3t, solvable == trivial, so every non-trivial property must be
        # classified unsolvable.  We check the contrapositive over a sample.
        system = SystemConfig(3, 1)
        for prop in enumerate_validity_properties(system, [0, 1], [0, 1], max_properties=40):
            result = classify(prop, system, [0, 1])
            if result.solvable:
                assert result.trivial
            else:
                assert not result.trivial

    def test_property_count_closed_form(self):
        system = SystemConfig(3, 1)
        # |I| = C(3,2)*2^2 + 2^3 = 20 configurations, 3 non-empty subsets of a binary domain.
        assert count_validity_properties(system, 2, 2) == 3**20

    def test_enumeration_respects_max_properties(self):
        system = SystemConfig(3, 1)
        sample = list(enumerate_validity_properties(system, [0, 1], [0, 1], max_properties=7))
        assert len(sample) == 7
        assert all(isinstance(prop, TableValidity) for prop in sample)


class TestTableValidity:
    def test_rejects_empty_admissible_set(self):
        config = InputConfiguration.from_mapping({0: 0, 1: 0, 2: 0})
        with pytest.raises(ValueError):
            TableValidity({config: set()}, output_domain=BINARY)

    def test_default_all_behaviour(self):
        config = InputConfiguration.from_mapping({0: 0, 1: 0, 2: 0})
        other = InputConfiguration.from_mapping({0: 1, 1: 1, 2: 1})
        prop = TableValidity({config: {0}}, output_domain=BINARY, default_all=True)
        assert prop.admissible_values(other) == frozenset(BINARY)
        strict = TableValidity({config: {0}}, output_domain=BINARY, default_all=False)
        with pytest.raises(KeyError):
            strict.admissible_values(other)
