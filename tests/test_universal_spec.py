"""Tests for the Universal decision rule (Algorithm 2, pure form)."""

import pytest

from repro.core import (
    InputConfiguration,
    CorrectProposalValidity,
    StrongValidity,
    SystemConfig,
    UniversalSpec,
    universal_decision,
    strong_validity_lambda,
)

SYSTEM = SystemConfig(n=4, t=1)


def vec(mapping):
    return InputConfiguration.from_mapping(mapping)


class TestUniversalSpec:
    def test_decide_applies_lambda(self):
        spec = UniversalSpec.for_standard_property(SYSTEM, "strong")
        assert spec.decide(vec({0: "v", 1: "v", 2: "v"})) == "v"

    def test_decide_rejects_wrong_vector_size(self):
        spec = UniversalSpec.for_standard_property(SYSTEM, "strong")
        with pytest.raises(ValueError):
            spec.decide(vec({0: "v", 1: "v", 2: "v", 3: "v"}))

    def test_for_standard_property_rejects_unknown_key(self):
        with pytest.raises(KeyError):
            UniversalSpec.for_standard_property(SYSTEM, "nonsense")

    def test_decision_is_admissible_for_similar_execution(self):
        spec = UniversalSpec.for_standard_property(SYSTEM, "strong")
        execution = vec({0: "v", 1: "v", 2: "v", 3: "w"})
        decided_vector = vec({0: "v", 1: "v", 2: "v"})
        assert spec.decision_is_admissible(decided_vector, execution)

    def test_decision_is_admissible_returns_false_for_dissimilar_vector(self):
        spec = UniversalSpec.for_standard_property(SYSTEM, "strong")
        execution = vec({0: "v", 1: "v", 2: "v", 3: "w"})
        mismatched_vector = vec({0: "x", 1: "x", 2: "x"})
        assert not spec.decision_is_admissible(mismatched_vector, execution)

    def test_from_finite_domains_builds_enumerative_lambda(self):
        spec = UniversalSpec.from_finite_domains(SYSTEM, StrongValidity([0, 1]), [0, 1])
        unanimous = vec({0: 1, 1: 1, 2: 1})
        assert spec.decide(unanimous) == 1

    def test_from_finite_domains_rejects_unsolvable_property(self):
        with pytest.raises(ValueError):
            UniversalSpec.from_finite_domains(
                SYSTEM, CorrectProposalValidity([0, 1, 2]), [0, 1, 2]
            )

    def test_universal_decision_helper(self):
        lam = strong_validity_lambda(SYSTEM)
        assert universal_decision(vec({0: 3, 1: 3, 2: 5}), lam) == 3

    def test_every_standard_spec_produces_admissible_decisions(self):
        # End-to-end pure check of Lemma 8's validity argument for each named variant.
        keys = ["strong", "weak", "convex-hull", "median", "free"]
        execution = vec({0: 1, 1: 1, 2: 2, 3: 3})
        decided_vector = vec({0: 1, 1: 1, 2: 2})
        for key in keys:
            spec = UniversalSpec.for_standard_property(SYSTEM, key)
            assert spec.decision_is_admissible(decided_vector, execution), key
