"""Runnable documentation: every documented theory module carries doctests.

The docs CI job runs the same examples through ``python -m doctest``
semantics; this tier-1 test keeps them green locally and enforces the
documentation contract — each module must state its theorem *and* show at
least three runnable examples.
"""

import doctest

import pytest

import repro.analysis.classification
import repro.analysis.complexity
import repro.analysis.lower_bound
import repro.analysis.partitioning
import repro.analysis.pipeline
import repro.core.similarity_condition
import repro.core.solvability
import repro.core.triviality

DOCUMENTED_MODULES = [
    repro.analysis.classification,
    repro.analysis.complexity,
    repro.analysis.lower_bound,
    repro.analysis.partitioning,
    repro.analysis.pipeline,
    repro.core.similarity_condition,
    repro.core.solvability,
    repro.core.triviality,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=[module.__name__ for module in DOCUMENTED_MODULES]
)
def test_module_doctests_pass_and_are_substantial(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__} has failing doctests"
    assert results.attempted >= 3, (
        f"{module.__name__} documents only {results.attempted} runnable examples; "
        "the documentation contract requires at least 3"
    )


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=[module.__name__ for module in DOCUMENTED_MODULES]
)
def test_module_docstring_names_its_paper_anchor(module):
    # Every documented module must tie itself back to the paper: a theorem,
    # definition, figure or section reference in the module docstring.
    docstring = module.__doc__ or ""
    anchors = ("Theorem", "Definition", "Figure", "Section", "Lemma")
    assert any(anchor in docstring for anchor in anchors), (
        f"{module.__name__} does not cite the paper result it implements"
    )
