"""Tests for slow broadcast, vector dissemination and the Algorithm 6 backend."""

from repro.broadcast import SlowBroadcast
from repro.core import InputConfiguration, SystemConfig, UniversalSpec
from repro.consensus import (
    deserialise_vector,
    serialise_vector,
    universal_process_factory,
    VectorConsensusProof,
    VectorDissemination,
)
from repro.consensus.vector_authenticated import SignedProposal
from repro.sim import Process, Simulation, SynchronousDelayModel, silent_factory


class SlowProcess(Process):
    def __init__(self, pid, simulation, payload=None):
        super().__init__(pid, simulation)
        self.payload = payload
        self.delivered = []

    def on_start(self):
        self.slow = SlowBroadcast(self, on_deliver=lambda blob, sender: self.delivered.append((sender, blob)))
        if self.payload is not None:
            self.slow.broadcast_message(self.payload)


class DisseminatorProcess(Process):
    def __init__(self, pid, simulation, blob):
        super().__init__(pid, simulation)
        self.blob = blob
        self.acquired = None

    def on_start(self):
        self.disseminator = VectorDissemination(
            self, on_acquire=lambda h, sig: setattr(self, "acquired", (h, sig))
        )
        self.disseminator.disseminate(self.blob)


class TestSlowBroadcast:
    def test_everyone_eventually_delivers(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=1))
        sim.populate(lambda pid, s: SlowProcess(pid, s, payload=f"blob-{pid}"))
        sim.run()
        for pid in sim.correct_processes:
            senders = {sender for sender, _ in sim.processes[pid].delivered}
            assert senders == set(range(4))

    def test_later_processes_are_slower(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=1))
        sim.populate(lambda pid, s: SlowProcess(pid, s, payload=pid))
        process0 = sim.processes[0]
        process3 = sim.processes[3]
        sim.run()
        assert process0.slow.wait_between_sends == 0
        assert process3.slow.wait_between_sends > process0.slow.wait_between_sends


class TestVectorDissemination:
    def test_every_process_acquires_a_valid_pair(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=2))
        sim.populate(lambda pid, s: DisseminatorProcess(pid, s, blob=b"common-vector"))
        sim.run(
            stop_when=lambda simulation: all(
                simulation.processes[p].acquired is not None for p in simulation.correct_processes
            )
        )
        hashes = set()
        for pid in sim.correct_processes:
            process = sim.processes[pid]
            assert process.acquired is not None
            blob_hash, signature = process.acquired
            assert process.disseminator.scheme.verify(signature, ("vector", blob_hash))
            hashes.add(blob_hash)
        # Redundancy: the acquired hash corresponds to a cached vector somewhere.
        for pid in sim.correct_processes:
            process = sim.processes[pid]
            assert any(h in process.disseminator.cached_vectors for h in hashes)

    def test_acquire_with_silent_faulty_processes(self):
        system = SystemConfig(4, 1)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=3))
        sim.populate(
            lambda pid, s: DisseminatorProcess(pid, s, blob=bytes([pid]) * 10),
            faulty=[3],
            faulty_factory=silent_factory,
        )
        sim.run(
            stop_when=lambda simulation: all(
                simulation.processes[p].acquired is not None for p in simulation.correct_processes
            )
        )
        for pid in sim.correct_processes:
            assert sim.processes[pid].acquired is not None


class TestSerialisation:
    def test_vector_roundtrip(self):
        from repro.crypto import KeyAuthority

        authority = KeyAuthority(4)
        proposals = {
            pid: SignedProposal(pid, f"v{pid}", authority.sign(pid, ("proposal", f"v{pid}")))
            for pid in range(3)
        }
        vector = InputConfiguration.from_mapping({pid: f"v{pid}" for pid in range(3)})
        proof = VectorConsensusProof(proposals)
        blob = serialise_vector(vector, proof)
        recovered_vector, recovered_proof = deserialise_vector(blob)
        assert recovered_vector == vector
        assert recovered_proof == proof


class TestCompactBackendEndToEnd:
    def run(self, proposals, n=4, t=1, faulty=(), seed=2, key="strong"):
        system = SystemConfig(n, t)
        spec = UniversalSpec.for_standard_property(system, key)
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=seed))
        sim.populate(
            universal_process_factory(spec, proposals, backend="compact"),
            faulty=faulty,
            faulty_factory=silent_factory,
        )
        sim.run_until_all_correct_decide(until=20_000)
        return sim, spec

    def test_agreement_termination_validity(self):
        proposals = {0: 5, 1: 5, 2: 5, 3: 6}
        sim, spec = self.run(proposals)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        assert set(sim.decisions().values()) == {5}

    def test_with_silent_byzantine(self):
        proposals = {0: 5, 1: 5, 2: 5, 3: 6}
        sim, _ = self.run(proposals, faulty=[3], seed=4)
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {5}

    def test_communication_is_cheaper_per_word_than_messages_suggest(self):
        # The compact backend should not ship full vectors in every Quad message:
        # its words/messages ratio stays bounded as n grows.
        proposals7 = {pid: pid % 2 for pid in range(7)}
        sim7, _ = self.run(proposals7, n=7, t=2, seed=5)
        assert sim7.all_correct_decided()
        ratio = sim7.metrics.communication_complexity / max(1, sim7.metrics.message_complexity)
        assert ratio < 25
