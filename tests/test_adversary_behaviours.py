"""Fault-injection tests: crash, message-dropping and equivocating behaviours."""

from repro.core import SystemConfig, UniversalSpec
from repro.consensus import universal_process_factory
from repro.consensus.vector_authenticated import SignedProposal
from repro.sim import (
    EquivocatingProposer,
    Simulation,
    SynchronousDelayModel,
    crash_factory,
    dropping_factory,
)


def build_simulation(seed=1, n=4, t=1):
    system = SystemConfig(n, t)
    spec = UniversalSpec.for_standard_property(system, "strong")
    proposals = {pid: 1 for pid in range(n)}
    sim = Simulation(system, delay_model=SynchronousDelayModel(seed=seed))
    return sim, spec, proposals


class TestCrashFaults:
    def test_leaderless_progress_with_late_crash(self):
        sim, spec, proposals = build_simulation(seed=3)
        correct = universal_process_factory(spec, proposals)
        sim.populate(correct, faulty=[2], faulty_factory=crash_factory(correct, crash_time=3.0))
        sim.run_until_all_correct_decide(until=10_000)
        assert sim.all_correct_decided()
        assert set(sim.decisions().values()) == {1}

    def test_crash_at_time_zero_behaves_like_silence(self):
        sim, spec, proposals = build_simulation(seed=4)
        correct = universal_process_factory(spec, proposals)
        sim.populate(correct, faulty=[3], faulty_factory=crash_factory(correct, crash_time=0.0))
        sim.run_until_all_correct_decide(until=10_000)
        assert sim.all_correct_decided()
        assert sim.metrics.per_sender_messages.get(3, 0) == 0


class TestMessageDropping:
    def test_dropping_byzantine_does_not_block_termination(self):
        sim, spec, proposals = build_simulation(seed=5)
        correct = universal_process_factory(spec, proposals)
        sim.populate(
            correct, faulty=[3], faulty_factory=dropping_factory(correct, drop_probability=0.7, seed=5)
        )
        sim.run_until_all_correct_decide(until=10_000)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        assert set(sim.decisions().values()) == {1}

    def test_dropping_everything_equals_silence(self):
        sim, spec, proposals = build_simulation(seed=6)
        correct = universal_process_factory(spec, proposals)
        sim.populate(
            correct, faulty=[3], faulty_factory=dropping_factory(correct, drop_probability=1.0, seed=6)
        )
        sim.run_until_all_correct_decide(until=10_000)
        assert sim.all_correct_decided()
        assert sim.metrics.per_sender_messages.get(3, 0) == 0


class TestEquivocatingProposer:
    def test_equivocation_in_vector_consensus_does_not_break_agreement(self):
        system = SystemConfig(4, 1)
        spec = UniversalSpec.for_standard_property(system, "strong")
        proposals = {pid: 1 for pid in range(4)}
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=7))

        def equivocator(pid, simulation):
            # Sends a different, self-signed proposal to every receiver under
            # the authenticated vector consensus's module path.
            path = ("universal", "vec_cons")

            def builder(process, receiver, value):
                signature = simulation.authority.sign(pid, ("proposal", value))
                return SignedProposal(sender=pid, value=value, signature=signature)

            return EquivocatingProposer(
                pid,
                simulation,
                target_path=path,
                value_for_receiver=lambda receiver: 100 + receiver,
                message_builder=builder,
            )

        sim.populate(universal_process_factory(spec, proposals), faulty=[3], faulty_factory=equivocator)
        sim.run_until_all_correct_decide(until=10_000)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        # Strong validity: all correct proposed 1, so 1 must be decided even
        # though the equivocator injected different values at every process.
        assert set(sim.decisions().values()) == {1}
