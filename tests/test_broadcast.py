"""Tests for the broadcast substrates (best-effort and Bracha reliable broadcast)."""

import pytest

from repro.core import SystemConfig
from repro.broadcast import BestEffortBroadcast, ByzantineReliableBroadcast
from repro.sim import Envelope, Process, Simulation, SynchronousDelayModel, silent_factory


class BebProcess(Process):
    def __init__(self, pid, simulation, message=None):
        super().__init__(pid, simulation)
        self.message = message
        self.delivered = []

    def on_start(self):
        self.beb = BestEffortBroadcast(self, on_deliver=lambda s, m: self.delivered.append((s, m)))
        if self.message is not None:
            self.beb.broadcast_message(self.message)


class BrbProcess(Process):
    def __init__(self, pid, simulation, message=None):
        super().__init__(pid, simulation)
        self.message = message
        self.delivered = {}

    def on_start(self):
        self.brb = ByzantineReliableBroadcast(self, on_deliver=self._deliver)
        if self.message is not None:
            self.brb.broadcast_message(self.message)

    def _deliver(self, origin, message):
        assert origin not in self.delivered, "integrity: at most one delivery per origin"
        self.delivered[origin] = message


def run_simulation(factory, n=4, t=1, faulty=(), faulty_factory=None, seed=1):
    system = SystemConfig(n, t)
    sim = Simulation(system, delay_model=SynchronousDelayModel(seed=seed))
    sim.populate(factory, faulty=faulty, faulty_factory=faulty_factory)
    sim.run()
    return sim


class TestBestEffortBroadcast:
    def test_all_correct_deliver_from_correct_senders(self):
        sim = run_simulation(lambda pid, s: BebProcess(pid, s, message=f"m{pid}"))
        for pid in sim.correct_processes:
            delivered = dict(sim.processes[pid].delivered)
            assert delivered == {p: f"m{p}" for p in range(4)}

    def test_point_to_point_send(self):
        class OneToOne(BebProcess):
            def on_start(self):
                super().on_start()
                if self.pid == 0:
                    self.beb.send_message(2, "direct")

        sim = run_simulation(lambda pid, s: OneToOne(pid, s))
        assert (0, "direct") in sim.processes[2].delivered
        assert (0, "direct") not in sim.processes[1].delivered

    def test_callback_can_be_attached_later(self):
        class LateCallback(Process):
            def on_start(self):
                self.beb = BestEffortBroadcast(self)
                self.got = []
                self.beb.set_deliver_callback(lambda s, m: self.got.append(m))
                self.beb.broadcast_message("x")

        sim = run_simulation(lambda pid, s: LateCallback(pid, s))
        assert sim.processes[0].got == ["x"] * 4 or len(sim.processes[0].got) == 4


class TestByzantineReliableBroadcast:
    def test_validity_and_totality_all_correct(self):
        sim = run_simulation(lambda pid, s: BrbProcess(pid, s, message=("payload", pid)))
        for pid in sim.correct_processes:
            assert sim.processes[pid].delivered == {p: ("payload", p) for p in range(4)}

    def test_silent_byzantine_origin_is_simply_not_delivered(self):
        sim = run_simulation(
            lambda pid, s: BrbProcess(pid, s, message=("payload", pid)),
            faulty=[3],
            faulty_factory=silent_factory,
        )
        for pid in sim.correct_processes:
            delivered = sim.processes[pid].delivered
            assert set(delivered) == {0, 1, 2}

    def test_consistency_under_equivocating_sender(self):
        class EquivocatingBrbSender(Process):
            """Sends conflicting SEND messages to different processes."""

            def on_start(self):
                path = ("brb",)
                for receiver in range(self.n):
                    value = "left" if receiver < self.n // 2 else "right"
                    self.send_raw(receiver, Envelope(path, ("send", value)))

        sim = run_simulation(
            lambda pid, s: BrbProcess(pid, s, message=("payload", pid)),
            faulty=[0],
            faulty_factory=lambda pid, s: EquivocatingBrbSender(pid, s),
        )
        deliveries = [
            sim.processes[pid].delivered.get(0)
            for pid in sim.correct_processes
            if 0 in sim.processes[pid].delivered
        ]
        # Consistency: whatever subset delivered a message from the equivocator,
        # they all delivered the same one.
        assert len(set(deliveries)) <= 1

    def test_larger_system(self):
        sim = run_simulation(lambda pid, s: BrbProcess(pid, s, message=pid), n=7, t=2, faulty=[5, 6], faulty_factory=silent_factory)
        for pid in sim.correct_processes:
            assert set(sim.processes[pid].delivered) == {0, 1, 2, 3, 4}

    def test_message_complexity_is_quadratic_per_origin(self):
        sim = run_simulation(lambda pid, s: BrbProcess(pid, s, message=pid))
        # n origins, each costing at most (send + echo + ready) * n^2 messages.
        n = 4
        assert sim.metrics.message_complexity <= 3 * n**3
        assert sim.metrics.message_complexity >= n * n  # at least the send phase
