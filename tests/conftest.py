"""Pytest configuration: make ``repro`` importable from the source tree.

The package is normally installed with ``pip install -e .``; inserting
``src/`` on ``sys.path`` here keeps the test-suite runnable even in
environments where the editable install is unavailable (e.g. offline CI
images with an old setuptools).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
