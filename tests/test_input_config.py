"""Unit and property-based tests for :mod:`repro.core.input_config`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InputConfiguration,
    ProcessProposal,
    SystemConfig,
    count_input_configurations,
    enumerate_full_configurations,
    enumerate_input_configurations,
    enumerate_minimal_configurations,
)


def make_config(mapping):
    return InputConfiguration.from_mapping(mapping)


class TestProcessProposal:
    def test_rejects_negative_process(self):
        with pytest.raises(ValueError):
            ProcessProposal(process=-1, proposal=0)

    def test_is_hashable_and_comparable(self):
        assert ProcessProposal(0, "a") == ProcessProposal(0, "a")
        assert ProcessProposal(0, "a") != ProcessProposal(1, "a")
        assert hash(ProcessProposal(0, "a")) == hash(ProcessProposal(0, "a"))


class TestInputConfigurationBasics:
    def test_rejects_duplicate_processes(self):
        with pytest.raises(ValueError):
            InputConfiguration([ProcessProposal(0, 1), ProcessProposal(0, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InputConfiguration([])

    def test_pairs_are_sorted_by_process(self):
        config = InputConfiguration([ProcessProposal(2, "c"), ProcessProposal(0, "a")])
        assert [pair.process for pair in config.pairs] == [0, 2]

    def test_accessors(self):
        config = make_config({0: "x", 2: "y", 3: "x"})
        assert config.size == 3
        assert len(config) == 3
        assert config.processes == frozenset({0, 2, 3})
        assert config[0] == "x"
        assert config.proposal_of(2) == "y"
        assert config.proposal_of(1) is None
        assert 0 in config and 1 not in config
        assert config.proposals() == ("x", "y", "x")
        assert config.distinct_proposals() == frozenset({"x", "y"})
        assert config.multiplicity("x") == 2
        assert config.multiplicity("z") == 0

    def test_getitem_raises_for_missing_process(self):
        config = make_config({0: "x"})
        with pytest.raises(KeyError):
            config[5]

    def test_unanimity(self):
        assert make_config({0: 1, 1: 1, 2: 1}).is_unanimous()
        assert make_config({0: 1, 1: 1, 2: 1}).unanimous_value() == 1
        assert not make_config({0: 1, 1: 2}).is_unanimous()
        assert make_config({0: 1, 1: 2}).unanimous_value() is None

    def test_unanimous_constructor(self):
        config = InputConfiguration.unanimous([0, 1, 4], "v")
        assert config.is_unanimous()
        assert config.processes == frozenset({0, 1, 4})

    def test_equality_and_hash(self):
        a = make_config({0: 1, 1: 2})
        b = InputConfiguration([ProcessProposal(1, 2), ProcessProposal(0, 1)])
        c = make_config({0: 1, 1: 3})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a configuration"

    def test_repr_mentions_processes(self):
        assert "P0" in repr(make_config({0: 1}))


class TestDerivedConfigurations:
    def test_restricted_to(self):
        config = make_config({0: "a", 1: "b", 2: "c"})
        restricted = config.restricted_to([0, 2])
        assert restricted.processes == frozenset({0, 2})
        assert restricted[0] == "a"

    def test_without(self):
        config = make_config({0: "a", 1: "b", 2: "c"})
        assert config.without([1]).processes == frozenset({0, 2})

    def test_without_everything_raises(self):
        config = make_config({0: "a"})
        with pytest.raises(ValueError):
            config.without([0])

    def test_extended_with(self):
        config = make_config({0: "a"})
        extended = config.extended_with({1: "b"})
        assert extended.processes == frozenset({0, 1})
        with pytest.raises(ValueError):
            config.extended_with({0: "z"})

    def test_as_mapping_returns_copy(self):
        config = make_config({0: "a"})
        mapping = config.as_mapping()
        mapping[5] = "z"
        assert 5 not in config


class TestValidation:
    def test_is_valid_for_size_bounds(self):
        system = SystemConfig(n=4, t=1)
        assert make_config({0: 1, 1: 1, 2: 1}).is_valid_for(system)
        assert make_config({0: 1, 1: 1, 2: 1, 3: 1}).is_valid_for(system)
        assert not make_config({0: 1, 1: 1}).is_valid_for(system)

    def test_is_valid_for_process_range(self):
        system = SystemConfig(n=4, t=1)
        assert not make_config({0: 1, 1: 1, 7: 1}).is_valid_for(system)

    def test_validate_for_raises(self):
        system = SystemConfig(n=4, t=1)
        with pytest.raises(ValueError):
            make_config({0: 1}).validate_for(system)
        make_config({0: 1, 1: 1, 2: 1}).validate_for(system)


class TestEnumeration:
    def test_counts_match_closed_form(self):
        system = SystemConfig(n=4, t=1)
        configs = list(enumerate_input_configurations(system, [0, 1]))
        assert len(configs) == count_input_configurations(system, 2)
        assert len(configs) == len(set(configs)), "enumeration must not produce duplicates"

    def test_sizes_within_bounds(self):
        system = SystemConfig(n=4, t=2)
        for config in enumerate_input_configurations(system, ["a", "b"]):
            assert system.min_configuration_size <= config.size <= system.max_configuration_size

    def test_minimal_and_full_slices(self):
        system = SystemConfig(n=4, t=1)
        minimal = list(enumerate_minimal_configurations(system, [0, 1]))
        full = list(enumerate_full_configurations(system, [0, 1]))
        assert all(config.size == 3 for config in minimal)
        assert all(config.size == 4 for config in full)
        assert len(minimal) == 4 * 2**3
        assert len(full) == 2**4

    def test_rejects_empty_domain(self):
        system = SystemConfig(n=4, t=1)
        with pytest.raises(ValueError):
            list(enumerate_input_configurations(system, []))

    def test_rejects_out_of_range_sizes(self):
        system = SystemConfig(n=4, t=1)
        with pytest.raises(ValueError):
            list(enumerate_input_configurations(system, [0, 1], sizes=[2]))

    def test_enumeration_is_deterministic(self):
        system = SystemConfig(n=4, t=1)
        first = list(enumerate_input_configurations(system, [1, 0]))
        second = list(enumerate_input_configurations(system, [0, 1]))
        assert first == second


@st.composite
def configurations(draw, max_n=6, values=st.integers(min_value=0, max_value=3)):
    n = draw(st.integers(min_value=1, max_value=max_n))
    processes = draw(
        st.sets(st.integers(min_value=0, max_value=max_n - 1), min_size=1, max_size=n)
    )
    return InputConfiguration.from_mapping({p: draw(values) for p in processes})


class TestInputConfigurationProperties:
    @given(configurations())
    @settings(max_examples=100)
    def test_multiplicities_sum_to_size(self, config):
        assert sum(config.multiplicity(v) for v in config.distinct_proposals()) == config.size

    @given(configurations())
    @settings(max_examples=100)
    def test_roundtrip_through_mapping(self, config):
        assert InputConfiguration.from_mapping(config.as_mapping()) == config

    @given(configurations())
    @settings(max_examples=100)
    def test_restriction_to_own_processes_is_identity(self, config):
        assert config.restricted_to(config.processes) == config
