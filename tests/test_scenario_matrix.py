"""Registry-composition tests: the full scenario matrix is runnable.

Every registered protocol × adversary × delay-model combination must
instantiate from pure-data specs and complete a short run without violating
agreement, validity or termination — that is what entitles the experiment
sweeps to quantify over the whole matrix.
"""

import pytest

from repro.experiments import (
    ADVERSARIES,
    DEFAULT_SEED,
    DELAY_MODELS,
    EQUIVOCATION_ATTACKS,
    PROTOCOLS,
    default_matrix,
    execute_run,
    find_scenarios,
    large_n_presets,
    make_scenario,
    scenario_matrix,
    scenario_name,
)

MATRIX = default_matrix()


class TestRegistryComposition:
    def test_matrix_is_cartesian_product_plus_presets(self):
        # Extension-registered keys (the fuzzer's attack surface) are
        # resolvable by name but deliberately excluded from the cartesian
        # defaults, so the committed baselines never grow by side effect.
        from repro.experiments.scenario import EXTENSION_ADVERSARIES, EXTENSION_DELAY_MODELS

        presets = large_n_presets()
        default_adversaries = set(ADVERSARIES) - EXTENSION_ADVERSARIES
        default_delays = set(DELAY_MODELS) - EXTENSION_DELAY_MODELS
        assert len(MATRIX) == len(PROTOCOLS) * len(default_adversaries) * len(default_delays) + len(presets)
        names = {spec.name for spec in MATRIX}
        assert len(names) == len(MATRIX)
        for protocol in PROTOCOLS:
            for adversary in default_adversaries:
                for delay in default_delays:
                    assert scenario_name(protocol, adversary, delay) in names
        for spec in presets:
            assert spec.name in names
            assert spec.n > 4

    def test_matrix_is_rich_enough_for_the_paper_claims(self):
        assert len(MATRIX) >= 90
        assert len(PROTOCOLS) >= 3
        assert len(ADVERSARIES) >= 5
        assert len(DELAY_MODELS) >= 4
        assert "equivocation" in ADVERSARIES
        assert "partition" in DELAY_MODELS and "jittered" in DELAY_MODELS

    def test_every_protocol_has_an_equivocation_attack(self):
        assert set(EQUIVOCATION_ATTACKS) == set(PROTOCOLS)

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError):
            make_scenario("no-such-protocol")
        with pytest.raises(KeyError):
            make_scenario("binary", adversary="no-such-adversary")
        with pytest.raises(KeyError):
            make_scenario("binary", delay="no-such-delay")
        with pytest.raises(KeyError):
            find_scenarios(["no-such-scenario"])

    def test_find_scenarios_resolves_matrix_names(self):
        names = [spec.name for spec in MATRIX[:3]]
        assert [spec.name for spec in find_scenarios(names)] == names

    def test_submatrix_selection(self):
        from repro.experiments.scenario import EXTENSION_DELAY_MODELS

        sub = scenario_matrix(protocols=["binary"], adversaries=["silent"], delays=None)
        assert len(sub) == len(set(DELAY_MODELS) - EXTENSION_DELAY_MODELS)
        assert all(spec.protocol == "binary" and spec.adversary == "silent" for spec in sub)

    def test_extension_keys_resolve_by_name_but_stay_out_of_defaults(self):
        spec = make_scenario("quad", "splitbrain", "stalled")
        assert spec.adversary == "splitbrain" and spec.delay == "stalled"
        assert not any(
            s.adversary == "splitbrain" or s.delay == "stalled" for s in MATRIX
        )

    def test_specs_are_pure_data(self):
        import pickle

        for spec in MATRIX:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            assert hash(clone) == hash(spec)

    def test_spec_param_override(self):
        spec = make_scenario("binary", params={"crash_time": 7.5, "gst": 2.0})
        assert spec.param("crash_time") == 7.5
        assert spec.param("gst") == 2.0
        assert spec.param("absent", "fallback") == "fallback"
        assert spec.with_(n=7, t=2).system().n == 7


@pytest.mark.parametrize("spec", MATRIX, ids=[spec.name for spec in MATRIX])
def test_every_combination_completes_correctly(spec):
    result = execute_run(spec, DEFAULT_SEED)
    assert result.error is None, result.error
    assert result.completed, f"{spec.name}: correct processes did not all decide"
    assert result.agreement, f"{spec.name}: agreement violated"
    assert result.validity_ok, f"{spec.name}: validity violated"
    assert result.violations == ()
    assert result.message_complexity > 0
    assert result.decision_latency > 0.0


@pytest.mark.parametrize("property_key", ["strong", "weak", "median", "convex-hull", "correct-proposal"])
def test_universal_scenarios_cover_validity_properties(property_key):
    # correct-proposal's Lambda needs a value proposed by more than t
    # processes, so pin a proposal spread with a clear plurality.
    spec = make_scenario(
        "universal-authenticated",
        "silent",
        "synchronous",
        property_key=property_key,
        params={"proposals": ((0, 1), (1, 1), (2, 0), (3, 0))},
    )
    result = execute_run(spec, DEFAULT_SEED)
    assert result.ok, (result.error, result.violations)


def test_larger_system_scenario_completes():
    spec = make_scenario("universal-authenticated", "silent", "eventual", n=7, t=2)
    result = execute_run(spec, DEFAULT_SEED)
    assert result.ok, (result.error, result.violations)
    assert len(result.decisions) == 5
