"""Edge cases of the classification and partitioning drivers.

The formalism draws hard boundaries — ``n >= 2``, ``0 < t < n``, non-empty
domains, the ``n = 3t`` resilience cliff — and the analysis layer must fail
loudly (or flip verdicts) exactly there, not degrade quietly.
"""

import pytest

from repro.analysis.classification import (
    classify_standard_properties,
    figure1_report,
    sample_validity_property_space,
)
from repro.analysis.partitioning import run_partitioning_attack
from repro.core.input_config import enumerate_input_configurations
from repro.core.solvability import enumerate_validity_properties
from repro.core.system import SystemConfig


class TestDegenerateSystems:
    def test_single_process_system_is_rejected(self):
        # n = 1 admits no consensus system (and no t with 0 < t < n).
        with pytest.raises(ValueError):
            SystemConfig(1, 0)
        with pytest.raises(ValueError):
            SystemConfig(1, 1)

    def test_fault_free_threshold_is_rejected(self):
        # t = 0 is outside the paper's model (0 < t < n); the classifiers
        # therefore cannot be asked about it.
        with pytest.raises(ValueError):
            SystemConfig(4, 0)
        with pytest.raises(ValueError):
            SystemConfig.without_byzantine_resilience(0)

    def test_two_process_system_is_the_smallest_classifiable(self):
        results = classify_standard_properties(SystemConfig(2, 1), [0, 1])
        # n = 2 <= 3t: the triviality dichotomy applies in its purest form.
        for key, classification in results.items():
            assert classification.solvable == classification.trivial, key


class TestResilienceBoundary:
    def test_exactly_3t_is_not_tolerant_but_3t_plus_1_is(self):
        at_boundary = classify_standard_properties(SystemConfig(3, 1), [0, 1])
        for key, classification in at_boundary.items():
            if classification.solvable:
                assert classification.trivial, key
        above = classify_standard_properties(SystemConfig(4, 1), [0, 1])
        assert above["strong"].solvable and not above["strong"].trivial

    def test_t2_boundary_spot_checks(self):
        # Full enumeration over all eight properties at (7, 2) takes minutes,
        # so at t = 2 the boundary side is spot-checked exactly and the
        # above-boundary side goes through the pipeline's closed-form oracle
        # (cross-validated against enumeration in tests/test_analysis_pipeline.py).
        from repro.core.properties import ConstantValidity, StrongValidity
        from repro.core.solvability import classify

        system = SystemConfig(6, 2)
        strong = classify(StrongValidity(), system, [0, 1])
        assert not strong.solvable and not strong.trivial
        constant = classify(ConstantValidity(0, output_domain=[0, 1]), system, [0, 1])
        assert constant.solvable and constant.trivial

        from repro.analysis.pipeline import PropertyTask, classify_task

        above = classify_task(
            PropertyTask(family="named", key="strong", n=7, t=2, domain=(0, 1)), budget=0
        )
        assert above.method == "closed-form"
        assert above.solvable and not above.trivial

    def test_partition_attack_only_succeeds_at_the_boundary(self):
        broken = run_partitioning_attack(t=1, seed=3)
        assert broken.system.n == 3 * broken.system.t
        assert broken.agreement_violated
        safe = run_partitioning_attack(t=1, system=SystemConfig(4, 1), seed=3)
        assert not safe.agreement_violated
        assert safe.all_correct_decided


class TestEmptyFamilies:
    def test_sampling_rejects_empty_output_domain(self):
        with pytest.raises(ValueError):
            sample_validity_property_space(SystemConfig(3, 1), [0, 1], [], samples=5)

    def test_enumeration_rejects_empty_input_domain(self):
        with pytest.raises(ValueError):
            list(enumerate_input_configurations(SystemConfig(3, 1), []))
        with pytest.raises(ValueError):
            next(enumerate_validity_properties(SystemConfig(3, 1), [], [0, 1]))

    def test_sampling_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            sample_validity_property_space(SystemConfig(3, 1), [0, 1], [0, 1], samples=0)

    def test_figure1_report_without_samples_has_no_population(self):
        report = figure1_report(SystemConfig(4, 1), domain=(0, 1), samples=0)
        assert report.sampled is None
        assert {row["property"] for row in report.named_rows()} >= {"strong", "weak"}


class TestPartitioningShape:
    def test_groups_partition_the_correct_processes(self):
        report = run_partitioning_attack(t=1, seed=4)
        correct = set(report.group_a) | set(report.group_c)
        assert not (set(report.group_a) & set(report.group_c))
        assert len(report.byzantine_group) == report.system.t
        assert correct | set(report.byzantine_group) == set(range(report.system.n))

    def test_summary_is_json_shaped(self):
        report = run_partitioning_attack(t=1, seed=4)
        summary = report.summary()
        assert summary["n"] == report.system.n
        assert isinstance(summary["group_a_decisions"], list)
        assert summary["agreement_violated"] is True
