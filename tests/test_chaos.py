"""The deterministic chaos harness: fault injection across every layer.

The resilience contract this file pins down: a sweep under injected worker
crashes, hangs and flush failures produces *byte-identical* results to a
fault-free sweep (faults change how long execution takes, never what it
computes); a poison task is quarantined after its retry budget without
aborting the sweep; a corrupt store file is quarantined and rebuilt from
its surviving rows; a disk-full flush degrades to the JSONL side-journal
and replays on the next open; and the CLI validates the resilience flags
at parse time and exits 130 on Ctrl-C with completed records flushed.

Every fault here comes from a :class:`~repro.resilience.faults.FaultPlan`
— pure data, seeded, replayable — so each test is exactly reproducible.
"""

import json
import pathlib
import sqlite3

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.runner import POISON_ERROR_PREFIX, Runner
from repro.experiments.scenario import default_matrix, find_scenarios
from repro.jobs import (
    EXIT_CONFIG,
    EXIT_INTERRUPTED,
    ExecutionSession,
    SweepJob,
    select_scenarios,
    specs_to_payloads,
)
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    TaskQuarantinedError,
    call_with_retry,
    is_transient_error,
)
from repro.resilience.retry import WorkerCrashError
from repro.store import PoisonEntry, RunStore, StoreRecovery

SLICE = [
    "binary+silent+synchronous",
    "quad+silent+synchronous",
    "binary+crash+synchronous",
    "quad+crash+synchronous",
]

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0)


def canonical_results(results):
    return [result.canonical_json() for result in results]


# ----------------------------------------------------------------------
# FaultPlan: pure data, wire round-trip, fault semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            seed=7,
            worker_crash=(3, 1),
            worker_hang=(5,),
            poison=(2,),
            flush_errors=(1, 2),
            corrupt_on_reopen=True,
            hang_seconds=0.5,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.worker_crash == (1, 3)  # coerced sorted

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_json(json.dumps({"seed": 1, "explode": True}))

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", FaultPlan(worker_crash=(2,)).to_json())
        assert FaultPlan.from_env().worker_crash == (2,)
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert FaultPlan.from_env() is None  # callers fall back to no faults

    def test_crash_faults_fire_on_first_attempt_only(self):
        plan = FaultPlan(worker_crash=(1,), poison=(2,))
        assert plan.worker_fault(1, attempt=1) == "crash"
        assert plan.worker_fault(1, attempt=2) is None  # retry runs clean
        assert plan.worker_fault(2, attempt=1) == "crash"
        assert plan.worker_fault(2, attempt=5) == "crash"  # poison never heals

    def test_flush_faults_are_attempt_indexed(self):
        plan = FaultPlan(flush_errors=(1, 3))
        assert [plan.flush_fault(n) for n in (1, 2, 3, 4)] == [True, False, True, False]


# ----------------------------------------------------------------------
# Retry policy: deterministic backoff, transient classification
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.05, backoff_max=0.2, seed=11)
        series = [policy.backoff(attempt, token=3) for attempt in range(1, 6)]
        assert series == [policy.backoff(attempt, token=3) for attempt in range(1, 6)]
        assert all(0.0 <= delay <= 0.2 for delay in series)
        assert series != [policy.backoff(attempt, token=4) for attempt in range(1, 6)]

    def test_classification(self):
        assert is_transient_error(WorkerCrashError("gone"))
        assert is_transient_error(OSError(28, "disk full"))
        assert is_transient_error(sqlite3.OperationalError("database is locked"))
        assert not is_transient_error(ValueError("bad input"))

    def test_call_with_retry_absorbs_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("transient")
            return "ok"

        retries = []
        result = call_with_retry(
            flaky, FAST_RETRY, sleep=lambda _: None, on_retry=lambda *a: retries.append(a)
        )
        assert result == "ok"
        assert calls["n"] == 3 and len(retries) == 2

    def test_call_with_retry_raises_deterministic_errors_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            call_with_retry(broken, FAST_RETRY, sleep=lambda _: None)
        assert calls["n"] == 1


# ----------------------------------------------------------------------
# Supervised execution: crashes, hangs, poison — results unchanged
# ----------------------------------------------------------------------
class TestSupervisedSweeps:
    def test_two_worker_kills_full_matrix_byte_identical(self):
        # The acceptance gate: kill two workers mid-sweep over the full
        # 112-scenario matrix; every result must be byte-identical to the
        # fault-free serial sweep, because execution faults may change how
        # runs are scheduled but never what they compute.
        scenarios = default_matrix()
        serial = Runner()
        baseline = canonical_results(serial.iter_runs(scenarios, [1]))
        serial.close()

        plan = FaultPlan(seed=1, worker_crash=(5, 40))
        chaotic = Runner(parallel=2, retry_policy=FAST_RETRY, fault_plan=plan)
        try:
            survived = canonical_results(chaotic.iter_runs(scenarios, [1]))
            assert chaotic.supervision.crashes_detected >= 2
            assert chaotic.supervision.respawns >= 2
            assert chaotic.supervision.quarantined == 0
        finally:
            chaotic.close()
        assert survived == baseline

    def test_hang_is_reclaimed_by_the_supervision_deadline(self):
        scenarios = find_scenarios(SLICE)
        serial = Runner()
        baseline = canonical_results(serial.iter_runs(scenarios, [1]))
        serial.close()

        plan = FaultPlan(worker_hang=(2,), hang_seconds=60.0)
        runner = Runner(
            parallel=2, retry_policy=FAST_RETRY, fault_plan=plan, supervision_deadline=1.0
        )
        try:
            survived = canonical_results(runner.iter_runs(scenarios, [1]))
            assert runner.supervision.crashes_detected >= 1
        finally:
            runner.close()
        assert survived == baseline

    def test_poison_task_is_quarantined_without_aborting(self, tmp_path):
        scenarios = find_scenarios(SLICE)
        plan = FaultPlan(poison=(2,))
        runner = Runner(parallel=2, retry_policy=FAST_RETRY, fault_plan=plan)
        with RunStore(tmp_path / "runs.db") as store:
            try:
                results = list(runner.iter_runs(scenarios, [1], store=store))
            finally:
                runner.close()
            poisoned = [r for r in results if r.error and r.error.startswith(POISON_ERROR_PREFIX)]
            healthy = [r for r in results if r.completed]
            assert len(results) == len(scenarios)
            assert len(poisoned) == 1
            assert f"after {FAST_RETRY.max_attempts} attempt(s)" in poisoned[0].error
            assert len(healthy) == len(scenarios) - 1
            assert runner.supervision.quarantined == 1
            # Quarantine is persisted as a typed record, not a cached run:
            # the poison table remembers it, the runs table does not.
            store.flush()
            entries = list(store.iter_poison())
            assert [type(e) for e in entries] == [PoisonEntry]
            assert entries[0].attempts == FAST_RETRY.max_attempts
            assert sum(1 for _ in store.iter_records()) == len(scenarios) - 1

    def test_poison_without_handler_raises_typed_error(self):
        plan = FaultPlan(poison=(1,))
        runner = Runner(parallel=2, retry_policy=FAST_RETRY, fault_plan=plan)
        try:
            with pytest.raises(TaskQuarantinedError, match="quarantined after"):
                list(runner.iter_tasks(_square, [1, 2, 3]))
        finally:
            runner.close()

    def test_retries_do_not_double_yield(self):
        # A killed worker's task is re-dispatched exactly once per retry;
        # the reorder buffer must still yield each index exactly once.
        plan = FaultPlan(worker_crash=(1, 3))
        runner = Runner(parallel=2, retry_policy=FAST_RETRY, fault_plan=plan)
        try:
            results = list(runner.iter_tasks(_square, list(range(8))))
        finally:
            runner.close()
        assert results == [n * n for n in range(8)]

    def test_close_narrowly_suppresses_teardown_errors(self):
        messages = []
        runner = Runner(parallel=2, on_log=messages.append)

        class WeirdPool:
            def terminate(self):
                raise KeyError("not a teardown error")

            def join(self):
                raise OSError("expected teardown noise")

        runner._pool = WeirdPool()
        runner.close()  # OSError suppressed silently, KeyError logged
        assert runner._pool is None
        assert any("KeyError" in message for message in messages)


def _square(value):
    return value * value


# ----------------------------------------------------------------------
# Store chaos: flush retry, journal spill + replay, corruption recovery
# ----------------------------------------------------------------------
class TestStoreChaos:
    def _record(self, store, scenarios, seed=1):
        runner = Runner()
        try:
            return list(runner.iter_runs(find_scenarios(scenarios), [seed], store=store))
        finally:
            runner.close()

    def test_injected_flush_failure_absorbed_by_retry(self, tmp_path):
        plan = FaultPlan(flush_errors=(1,))
        with RunStore(tmp_path / "runs.db", retry_policy=FAST_RETRY, fault_plan=plan) as store:
            self._record(store, SLICE[:2])
        assert store.stats.flush_retries >= 1
        with RunStore(tmp_path / "runs.db") as reopened:
            assert sum(1 for _ in reopened.iter_records()) == 2

    def test_disk_full_spills_to_journal_and_replays_on_open(self, tmp_path):
        # Every flush attempt fails with the injected disk-full error, so
        # close() degrades to the JSONL side-journal instead of raising.
        plan = FaultPlan(flush_errors=tuple(range(1, 10)))
        store = RunStore(tmp_path / "runs.db", retry_policy=FAST_RETRY, fault_plan=plan)
        self._record(store, SLICE[:2])
        store.close()
        journal = store.journal_path
        assert journal.exists()
        assert all(
            set(json.loads(line)) == {"table", "row"}
            for line in journal.read_text().splitlines()
        )
        with RunStore(tmp_path / "runs.db") as reopened:
            assert reopened.journal_replayed == 2
            assert sum(1 for _ in reopened.iter_records()) == 2
        assert not journal.exists()

    def test_corrupt_file_is_quarantined_and_rebuilt(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            self._record(store, SLICE[:2])
        plan = FaultPlan(corrupt_on_reopen=True)
        with RunStore(path, fault_plan=plan) as store:
            recovery = store.recovery
            assert isinstance(recovery, StoreRecovery)
            quarantined = pathlib.Path(recovery.quarantined_path)
            assert quarantined.exists()
            assert quarantined.suffix == ".corrupt"
            # The rebuilt store serves whatever rows survived the damage.
            assert sum(1 for _ in store.iter_records()) == recovery.salvaged_rows
        with RunStore(path) as clean:  # the rebuilt file opens cleanly
            assert clean.recovery is None

    def test_non_store_files_still_rejected_not_recovered(self, tmp_path):
        from repro.store.store import StoreFormatError

        path = tmp_path / "not-a-store.db"
        path.write_text("this is not sqlite\n")
        with pytest.raises(StoreFormatError, match="cannot open run store"):
            RunStore(path)
        assert path.exists()  # refused, not quarantined


# ----------------------------------------------------------------------
# Fuzz campaigns under faults
# ----------------------------------------------------------------------
class TestFuzzChaos:
    def test_campaign_identical_under_worker_crashes(self):
        from repro.fuzz.engine import run_fuzz
        from repro.jobs.spec import resolve_fuzz_bases

        bases = resolve_fuzz_bases(["binary+none+partition"])
        baseline = run_fuzz(bases, budget=12, fuzz_seed=5, shrink=False)

        plan = FaultPlan(worker_crash=(2, 6))
        runner = Runner(parallel=2, retry_policy=FAST_RETRY, fault_plan=plan)
        try:
            chaotic = run_fuzz(bases, budget=12, fuzz_seed=5, shrink=False, runner=runner)
            assert runner.supervision.crashes_detected >= 1
        finally:
            runner.close()
        assert chaotic.to_dict() == baseline.to_dict()


# ----------------------------------------------------------------------
# CLI: flag validation, env-driven plans, Ctrl-C teardown
# ----------------------------------------------------------------------
class TestChaosCLI:
    @pytest.mark.parametrize("command", ["run", "analyze", "fuzz"])
    @pytest.mark.parametrize("value", ["-1", "half"])
    def test_max_retries_validated_at_parse_time(self, command, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([command, "--max-retries", value])
        assert excinfo.value.code == EXIT_CONFIG
        assert "expected a non-negative integer" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["run", "analyze", "fuzz"])
    def test_resilience_flags_accepted_everywhere(self, command):
        parser_probe = ["--max-retries", "2", "--fail-fast"]
        if command == "run":
            argv = [command, "--scenario", SLICE[0], "--quiet"] + parser_probe
        elif command == "analyze":
            argv = [command, "--family", "named", "--quiet", "--no-cross-check"] + parser_probe
        else:
            argv = [command, "--budget", "2", "--quiet"] + parser_probe
        assert cli_main(argv) == 0

    def test_env_fault_plan_sweep_matches_fault_free_store(self, tmp_path, monkeypatch, capsys):
        argv = ["run", "--scenario"] + SLICE + ["--seeds", "2", "--parallel", "2", "--quiet"]
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert cli_main(argv + ["--store", str(tmp_path / "clean.db")]) == 0
        plan = FaultPlan(seed=3, worker_crash=(2, 5))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        assert cli_main(argv + ["--store", str(tmp_path / "chaos.db")]) == 0
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        capsys.readouterr()

        with RunStore(tmp_path / "clean.db") as clean, RunStore(tmp_path / "chaos.db") as chaos:
            clean_records = sorted(r.canonical_json() for r in clean.iter_records())
            chaos_records = sorted(r.canonical_json() for r in chaos.iter_records())
        assert clean_records == chaos_records
        assert len(clean_records) == len(SLICE) * 2

    def test_keyboard_interrupt_flushes_completed_and_exits_130(
        self, tmp_path, monkeypatch, capsys
    ):
        # Ctrl-C after the second completed run: the session must still
        # terminate the pool, flush what finished, and exit 130.
        original_put = RunStore.put
        puts = {"n": 0}

        def interrupting_put(self, spec, result):
            stored = original_put(self, spec, result)
            puts["n"] += 1
            if puts["n"] == 2:
                raise KeyboardInterrupt
            return stored

        monkeypatch.setattr(RunStore, "put", interrupting_put)
        argv = ["run", "--scenario"] + SLICE + ["--store", str(tmp_path / "runs.db"), "--quiet"]
        assert cli_main(argv) == EXIT_INTERRUPTED
        assert "interrupted: run stopped by SIGINT" in capsys.readouterr().err
        monkeypatch.setattr(RunStore, "put", original_put)
        with RunStore(tmp_path / "runs.db") as store:
            assert sum(1 for _ in store.iter_records()) == 2

    def test_interrupted_sweep_resumes_missing_runs_only(self, tmp_path, monkeypatch, capsys):
        # The resume contract: after an interruption, a second identical
        # sweep executes only the runs the first one never completed.
        self.test_keyboard_interrupt_flushes_completed_and_exits_130(
            tmp_path, monkeypatch, capsys
        )
        argv = ["run", "--scenario"] + SLICE + ["--store", str(tmp_path / "runs.db")]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert f"2 cached, {len(SLICE) - 2} executed" in out


# ----------------------------------------------------------------------
# Session/executor integration: quarantine surfaces in the outcome
# ----------------------------------------------------------------------
class TestSessionChaos:
    def test_sweep_outcome_reports_quarantine_and_supervision(self, tmp_path):
        plan = FaultPlan(poison=(2,))
        with ExecutionSession(
            parallel=2, store_path=tmp_path / "runs.db", max_retries=1, fault_plan=plan
        ) as session:
            outcome = session.submit(
                SweepJob(specs_to_payloads(select_scenarios(SLICE)), collect_records=True)
            )
        assert outcome.status == "Error"
        assert len(outcome.quarantined) == 1
        assert outcome.quarantined[0].error.startswith(POISON_ERROR_PREFIX)
        assert outcome.supervision["quarantined"] == 1
        assert outcome.supervision["dispatched"] >= len(SLICE)

    def test_fail_fast_stops_after_first_failure(self, tmp_path, monkeypatch):
        # Quarantine the first dispatched task; fail-fast must cut the
        # sweep short instead of completing the matrix.
        plan = FaultPlan(poison=(1,))
        with ExecutionSession(
            parallel=2,
            store_path=tmp_path / "runs.db",
            max_retries=0,
            fail_fast=True,
            fault_plan=plan,
        ) as session:
            outcome = session.submit(
                SweepJob(specs_to_payloads(select_scenarios(SLICE)), collect_records=True)
            )
        assert outcome.status == "Error"
        assert len(outcome.records) < len(SLICE)
