"""Observability: metrics registry, trace sink, telemetry persistence, stats CLI.

The hard contract under test: telemetry is **descriptive, never
load-bearing**.  Traced/profiled/metered executions must produce
byte-identical run records and summaries to bare ones, on or off, serial
or parallel.  Everything else here covers the instruments themselves —
registry semantics, JSONL trace structure, the persisted ``telemetry``
table, the ``stats`` subcommand and the cProfile worker hooks.
"""

import io
import json

import pytest

from repro.experiments.aggregate import results_to_json
from repro.experiments.cli import main
from repro.jobs import (
    EVENT_STATUS,
    ExecutionSession,
    JobEvent,
    SweepJob,
    open_run_store,
    select_scenarios,
    specs_to_payloads,
)
from repro.obs import (
    METRICS,
    MetricsRegistry,
    PROFILE_DIR_ENV,
    RECORD_EVENT,
    RECORD_SPAN_END,
    RECORD_SPAN_START,
    TIMER_BUCKETS,
    TraceSink,
    merge_profiles,
    profile_directory,
    render_markdown,
    render_prometheus,
    render_text,
    set_enabled,
    telemetry_enabled,
    top_functions,
    worker_profiling,
)
from repro.store import RunStore

SLICE = ["binary+silent+synchronous", "quad+silent+synchronous"]


def slice_payloads():
    return specs_to_payloads(select_scenarios(SLICE))


def run_cli(*argv):
    return main(list(argv))


@pytest.fixture(autouse=True)
def clean_registry():
    """Zero the process-global registry around every test in this module."""
    METRICS.reset()
    set_enabled(True)
    yield
    set_enabled(True)
    METRICS.reset()


def run_sweep(store_path=None, trace_path=None, parallel=None, on_event=None):
    job = SweepJob(scenario_payloads=slice_payloads(), seeds=(1, 2), collect_records=True)
    with ExecutionSession(
        parallel=parallel, store_path=store_path, trace_path=trace_path
    ) as session:
        return session.submit(job, on_event=on_event)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_and_gauge_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("x.count")
        counter.inc()
        counter.inc(3)
        registry.gauge("x.level").set(7)
        assert counter.value == 4
        assert registry.snapshot()["gauges"]["x.level"] == 7

    def test_instruments_are_created_once_and_reused(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.timer("a.t") is registry.timer("a.t")

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dual.use")
        with pytest.raises(ValueError, match="already exists as a counter"):
            registry.gauge("dual.use")
        with pytest.raises(ValueError, match="already exists as a counter"):
            registry.timer("dual.use")

    @pytest.mark.parametrize("name", ["", "Upper.case", "trailing.", ".leading", "sp ace"])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError, match="invalid instrument name"):
            MetricsRegistry().counter(name)

    def test_timer_buckets_and_context_manager(self):
        registry = MetricsRegistry()
        timer = registry.timer("t.wall")
        timer.observe(0.0005)  # first bucket (<= 0.001)
        timer.observe(0.3)  # <= 0.5
        timer.observe(99.0)  # +inf
        with timer.time():
            pass
        assert timer.count == 4
        snapshot = registry.snapshot()["timers"]["t.wall"]
        assert snapshot["buckets"]["0.001"] >= 1
        assert snapshot["buckets"]["0.5"] == 1
        assert snapshot["buckets"]["+inf"] == 1
        assert set(snapshot["buckets"]) == {f"{b:g}" for b in TIMER_BUCKETS} | {"+inf"}

    def test_counter_delta_reports_only_movement(self):
        registry = MetricsRegistry()
        moved = registry.counter("moved")
        registry.counter("still")
        before = registry.counter_values()
        moved.inc(2)
        late = registry.counter("late.arrival")
        late.inc()
        assert registry.counter_delta(before) == {"moved": 2, "late.arrival": 1}

    def test_reset_zeroes_in_place_keeping_cached_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("kept")
        timer = registry.timer("kept.t")
        counter.inc(5)
        timer.observe(1.0)
        registry.reset()
        assert counter.value == 0 and timer.count == 0
        counter.inc()  # the cached object is still the registry's object
        assert registry.snapshot()["counters"]["kept"] == 1

    def test_disable_makes_updates_no_ops(self):
        registry = MetricsRegistry()
        counter = registry.counter("gated")
        timer = registry.timer("gated.t")
        gauge = registry.gauge("gated.g")
        set_enabled(False)
        assert not telemetry_enabled()
        counter.inc()
        timer.observe(1.0)
        gauge.set(3)
        assert counter.value == 0 and timer.count == 0 and gauge.value == 0
        set_enabled(True)
        counter.inc()
        assert counter.value == 1


class TestRenderers:
    def test_text_empty_registry(self):
        assert "(no instruments recorded)" in render_text(MetricsRegistry().snapshot())

    def test_text_lists_counters_and_timers(self):
        registry = MetricsRegistry()
        registry.counter("c.one").inc(3)
        registry.timer("t.one").observe(0.5)
        text = render_text(registry.snapshot(), title="telemetry")
        assert text.startswith("telemetry:")
        assert "c.one = 3" in text
        assert "t.one: count=1" in text

    def test_markdown_table(self):
        registry = MetricsRegistry()
        registry.counter("c.one").inc()
        registry.gauge("g.one").set(2)
        lines = render_markdown(registry.snapshot()).splitlines()
        assert lines[0] == "| instrument | kind | value |"
        assert "| c.one | counter | 1 |" in lines
        assert "| g.one | gauge | 2 |" in lines

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("runner.tasks.dispatched").inc(4)
        registry.timer("runner.task.wall").observe(0.0005)
        registry.timer("runner.task.wall").observe(99.0)
        text = render_prometheus(registry.snapshot())
        assert text.endswith("\n")
        assert "# TYPE repro_runner_tasks_dispatched_total counter" in text
        assert "repro_runner_tasks_dispatched_total 4" in text
        # Histogram buckets are cumulative and end at +inf == _count.
        assert 'repro_runner_task_wall_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_runner_task_wall_seconds_bucket{le="+inf"} 2' in text
        assert "repro_runner_task_wall_seconds_count 2" in text


# ----------------------------------------------------------------------
# Trace sink
# ----------------------------------------------------------------------
class TestTraceSink:
    def read_records(self, text):
        return [json.loads(line) for line in text.strip().splitlines()]

    def test_jsonl_structure_and_monotonic_sequence(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(path)
        with sink.span("job.sweep", fingerprint="abc"):
            sink.event("task.done", scenario="s1")
            with sink.span("phase.execute"):
                sink.event("tick")
        sink.close()
        records = self.read_records(path.read_text())
        assert records[0]["name"] == "trace" and records[0]["version"] == 1
        assert [r["sequence"] for r in records] == list(range(len(records)))
        assert all(r["t"] >= 0 for r in records)
        by_kind = {}
        for record in records:
            by_kind.setdefault(record["record"], []).append(record)
        assert len(by_kind[RECORD_SPAN_START]) == len(by_kind[RECORD_SPAN_END]) == 2
        # Parent attribution: events and inner spans name the innermost span.
        task_done = next(r for r in records if r["name"] == "task.done")
        assert task_done["parent"] == "job.sweep"
        inner_start = next(
            r for r in records if r["name"] == "phase.execute" and r["record"] == RECORD_SPAN_START
        )
        assert inner_start["parent"] == "job.sweep"
        tick = next(r for r in records if r["name"] == "tick")
        assert tick["parent"] == "phase.execute"
        ends = [r for r in records if r["record"] == RECORD_SPAN_END]
        assert all("duration" in r and r["duration"] >= 0 for r in ends)

    def test_span_records_error_type_and_reraises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(path)
        with pytest.raises(ValueError):
            with sink.span("job.boom"):
                raise ValueError("boom")
        sink.close()
        end = [r for r in self.read_records(path.read_text()) if r["record"] == RECORD_SPAN_END][-1]
        assert end["error"] == "ValueError"

    def test_borrowed_handle_survives_close(self):
        handle = io.StringIO()
        sink = TraceSink(handle)
        sink.event("ping")
        sink.close()
        assert not handle.closed
        records = self.read_records(handle.getvalue())
        assert [r["name"] for r in records] == ["trace", "ping"]

    def test_write_failure_silences_sink_instead_of_raising(self):
        class BrokenHandle:
            def write(self, _):
                raise OSError("disk full")

        sink = TraceSink(BrokenHandle())
        assert sink.closed  # the header write already failed
        sink.event("ignored")  # must not raise
        with sink.span("still.fine"):
            pass
        sink.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = TraceSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()
        assert sink.closed


# ----------------------------------------------------------------------
# Telemetry is descriptive, never load-bearing
# ----------------------------------------------------------------------
class TestTelemetryNeutrality:
    def test_traced_and_untraced_sweeps_are_byte_identical(self, tmp_path):
        plain = run_sweep(store_path=tmp_path / "plain.db")
        METRICS.reset()
        traced = run_sweep(store_path=tmp_path / "traced.db", trace_path=tmp_path / "t.jsonl")
        assert results_to_json(plain.records) == results_to_json(traced.records)
        assert plain.summaries == traced.summaries
        assert (tmp_path / "t.jsonl").exists()

    def test_telemetry_off_is_byte_identical_to_on(self, tmp_path):
        enabled = run_sweep(store_path=tmp_path / "on.db")
        set_enabled(False)
        METRICS.reset()
        disabled = run_sweep(store_path=tmp_path / "off.db")
        assert results_to_json(enabled.records) == results_to_json(disabled.records)
        assert enabled.summaries == disabled.summaries
        # And with telemetry off, nothing moved.
        assert all(value == 0 for value in METRICS.counter_values().values())

    def test_traced_parallel_matches_untraced_serial(self, tmp_path):
        serial = run_sweep()
        parallel = run_sweep(trace_path=tmp_path / "t.jsonl", parallel=2)
        assert results_to_json(serial.records) == results_to_json(parallel.records)


# ----------------------------------------------------------------------
# The persisted telemetry table
# ----------------------------------------------------------------------
class TestTelemetryTable:
    def test_put_get_round_trip(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            snapshot_id = store.put_telemetry("sweep", {"registry": {"counters": {"x": 1}}})
            assert snapshot_id is not None
            record = store.get_telemetry()
            assert record.snapshot_id == snapshot_id
            assert record.label == "sweep"
            assert record.snapshot["registry"]["counters"]["x"] == 1

    def test_latest_wins_and_filters(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            first = store.put_telemetry("sweep", {"n": 1})
            store.put_telemetry("fuzz", {"n": 2})
            last = store.put_telemetry("sweep", {"n": 3})
            assert store.get_telemetry().snapshot == {"n": 3}
            assert store.get_telemetry(label="fuzz").snapshot == {"n": 2}
            assert store.get_telemetry(snapshot_id=first).snapshot == {"n": 1}
            assert store.get_telemetry(snapshot_id=last).label == "sweep"
            assert store.get_telemetry(snapshot_id=9999) is None
            assert [r.snapshot["n"] for r in store.iter_telemetry()] == [1, 2, 3]
            assert [r.snapshot["n"] for r in store.iter_telemetry(label="sweep")] == [1, 3]
            assert store.count_telemetry() == 3

    def test_put_failure_returns_none_instead_of_raising(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            assert store.put_telemetry("sweep", {"bad": object()}) is None

    def test_sweep_job_persists_a_snapshot_with_nonzero_counters(self, tmp_path):
        run_sweep(store_path=tmp_path / "runs.db")
        with open_run_store(tmp_path / "runs.db") as store:
            record = store.get_telemetry(label="sweep")
        assert record is not None
        counters = record.snapshot["registry"]["counters"]
        assert counters["runner.tasks.dispatched"] == 4
        assert counters["store.stored"] == 4
        assert record.snapshot["job_counters"]["job.sweep.submitted"] == 1
        assert record.snapshot["status"] == "Complete"
        assert isinstance(record.snapshot["supervision"], dict)
        assert record.snapshot["store"]["stored"] == 4

    def test_pre_telemetry_store_file_is_upgraded_in_place(self, tmp_path):
        # Simulate a store created before the telemetry table existed.
        path = tmp_path / "old.db"
        with RunStore(path) as store:
            store._connection().execute("DROP TABLE telemetry")
            store._connection().commit()
        with RunStore(path) as store:
            assert store.count_telemetry() == 0
            assert store.put_telemetry("sweep", {"ok": True}) is not None


# ----------------------------------------------------------------------
# JobEvent sequence + metrics payload
# ----------------------------------------------------------------------
class TestJobEventSequence:
    def collect(self, **kwargs):
        events = []
        run_sweep(on_event=events.append, **kwargs)
        return events

    def test_sequence_is_monotonic_from_zero(self):
        events = self.collect()
        assert [event.sequence for event in events] == list(range(len(events)))

    def test_sequence_is_monotonic_under_parallel_sweeps(self):
        events = self.collect(parallel=2)
        assert [event.sequence for event in events] == list(range(len(events)))

    def test_each_job_restarts_its_sequence(self, tmp_path):
        job = SweepJob(scenario_payloads=slice_payloads(), seeds=(1,))
        with ExecutionSession(store_path=tmp_path / "runs.db") as session:
            first, second = [], []
            session.submit(job, on_event=first.append)
            session.submit(job, on_event=second.append)
        assert first[0].sequence == 0 and second[0].sequence == 0
        assert [e.sequence for e in second] == list(range(len(second)))

    def test_terminal_status_event_carries_metrics_delta(self):
        events = self.collect()
        terminal = [e for e in events if e.kind == EVENT_STATUS][-1]
        assert terminal.status == "Complete"
        assert terminal.metrics["job.sweep.submitted"] == 1
        assert terminal.metrics["runner.tasks.dispatched"] == 4
        non_terminal = [e for e in events if e.kind == EVENT_STATUS][0]
        assert non_terminal.metrics is None

    def test_to_dict_round_trips_sequence_and_metrics(self):
        event = JobEvent(
            job="sweep", kind=EVENT_STATUS, status="Complete", sequence=7, metrics={"a": 1}
        )
        payload = event.to_dict()
        assert payload["sequence"] == 7 and payload["metrics"] == {"a": 1}
        assert JobEvent(**payload) == event
        json.dumps(payload)  # stays JSON-ready


# ----------------------------------------------------------------------
# The stats subcommand
# ----------------------------------------------------------------------
class TestStatsCli:
    @pytest.fixture()
    def populated(self, tmp_path):
        db = tmp_path / "runs.db"
        assert run_cli("run", "--scenario", *SLICE, "--seeds", "2", "--store", str(db), "--quiet") == 0
        return db

    def test_live_registry_rendering(self, capsys):
        run_sweep()
        assert run_cli("stats") == 0
        out = capsys.readouterr().out
        assert "telemetry (live registry):" in out
        assert "runner.tasks.dispatched = 4" in out

    def test_persisted_snapshot_text_and_json(self, populated, capsys):
        assert run_cli("stats", "--store", str(populated)) == 0
        out = capsys.readouterr().out
        assert "telemetry snapshot" in out and "status=Complete" in out
        assert "runner.tasks.dispatched = 4" in out
        assert "supervision:" in out
        assert run_cli("stats", "--store", str(populated), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "store" and payload["label"] == "sweep"
        assert payload["registry"]["counters"]["runner.tasks.dispatched"] == 4

    def test_snapshot_id_and_label_selection(self, populated, capsys):
        with open_run_store(populated) as store:
            wanted = store.put_telemetry("fuzz", {"registry": {"counters": {"only.me": 9}}})
        assert run_cli("stats", "--store", str(populated), "--label", "fuzz", "--json") == 0
        assert json.loads(capsys.readouterr().out)["registry"]["counters"]["only.me"] == 9
        assert run_cli("stats", "--store", str(populated), "--snapshot", str(wanted), "--json") == 0
        assert json.loads(capsys.readouterr().out)["snapshot_id"] == wanted

    def test_markdown_and_prometheus_outputs(self, populated, tmp_path, capsys):
        assert run_cli("stats", "--store", str(populated), "--markdown") == 0
        assert "| runner.tasks.dispatched | counter | 4 |" in capsys.readouterr().out
        prom = tmp_path / "metrics.prom"
        assert run_cli("stats", "--store", str(populated), "--prometheus", str(prom)) == 0
        assert "repro_runner_tasks_dispatched_total 4" in prom.read_text()

    def test_empty_store_exits_3(self, tmp_path, capsys):
        db = tmp_path / "empty.db"
        RunStore(db).close()
        assert run_cli("stats", "--store", str(db)) == 3
        assert "empty slice:" in capsys.readouterr().err

    def test_missing_store_and_misused_flags_exit_2(self, tmp_path, capsys):
        assert run_cli("stats", "--store", str(tmp_path / "nope.db")) == 2
        assert run_cli("stats", "--snapshot", "1") == 2
        assert run_cli("stats", "--label", "sweep") == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfiling:
    def test_worker_profiling_exports_and_restores_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        assert profile_directory() is None
        with worker_profiling(tmp_path / "prof"):
            assert profile_directory() == str(tmp_path / "prof")
        assert profile_directory() is None

    def test_profiled_sweep_dumps_and_merges(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        profile_dir = tmp_path / "prof"
        with worker_profiling(profile_dir):
            run_sweep()
        dumps = list(profile_dir.glob("worker-*.pstats"))
        assert dumps, "serial sweep should leave this process's profile behind"
        stats = merge_profiles(profile_dir, output=profile_dir / "merged.pstats")
        assert stats is not None
        assert (profile_dir / "merged.pstats").exists()
        lines = top_functions(stats, limit=5)
        assert 0 < len(lines) <= 5
        assert all("calls" in line for line in lines)

    def test_merge_skips_corrupt_dumps(self, tmp_path):
        (tmp_path / "worker-1.pstats").write_bytes(b"not a pstats dump")
        assert merge_profiles(tmp_path) is None

    def test_run_profile_flag_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        profile_dir = tmp_path / "prof"
        code = run_cli(
            "run", "--scenario", SLICE[0], "--seeds", "1", "--profile", str(profile_dir), "--quiet"
        )
        assert code == 0
        assert (profile_dir / "merged.pstats").exists()
        assert "profile" in capsys.readouterr().out

    def test_profiled_run_is_byte_identical_to_bare(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        bare = run_sweep()
        with worker_profiling(tmp_path / "prof"):
            profiled = run_sweep()
        assert results_to_json(bare.records) == results_to_json(profiled.records)


# ----------------------------------------------------------------------
# report surfaces poison + supervision
# ----------------------------------------------------------------------
class TestReportSurfacesPoisonAndSupervision:
    def test_report_text_and_json_include_poison_and_supervision(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert run_cli("run", "--scenario", *SLICE, "--seeds", "2", "--store", str(db), "--quiet") == 0
        with open_run_store(db) as store:
            spec = select_scenarios([SLICE[0]])[0]
            store.put_poison(spec, 99, attempts=3, reason="worker kept dying")
        capsys.readouterr()
        json_path = tmp_path / "report.json"
        assert run_cli("report", "--store", str(db), "--json-output", str(json_path)) == 0
        out = capsys.readouterr().out
        assert "poison: 1 quarantined task(s)" in out
        assert "worker kept dying (3 attempts)" in out
        assert "supervision (last sweep):" in out
        payload = json.loads(json_path.read_text())
        assert payload["poison"] == [
            {"scenario": SLICE[0], "seed": 99, "attempts": 3, "reason": "worker kept dying"}
        ]
        assert set(payload["supervision"]) == {
            "crashes_detected", "dispatched", "quarantined", "respawns", "retries",
        }
        assert "scenarios" in payload and "format_version" in payload

    def test_report_json_without_poison_is_an_empty_list(self, tmp_path, capsys):
        db = tmp_path / "runs.db"
        assert run_cli("run", "--scenario", SLICE[0], "--seeds", "1", "--store", str(db), "--quiet") == 0
        json_path = tmp_path / "report.json"
        assert run_cli("report", "--store", str(db), "--quiet", "--json-output", str(json_path)) == 0
        payload = json.loads(json_path.read_text())
        assert payload["poison"] == []
