"""Seed-parameterized property tests for GF(256) and Reed-Solomon coding.

Stdlib-only property testing: each test draws randomized inputs from a
``random.Random(seed)`` for several seeds, so the properties are exercised on
hundreds of cases while every failure stays reproducible from the test id.
Covers the field axioms, polynomial division identities, and the codec's
round-trip identity under erasure-heavy edge cases (``k=1``, the maximum
number of erasures, and error correction up to the Berlekamp-Welch bound).
"""

import random

import pytest

from repro.coding import gf256
from repro.coding.reed_solomon import DecodingError, Fragment, ReedSolomonCode

SEEDS = [0, 1, 2, 3, 4]
CASES_PER_SEED = 50


def elements(rng, count):
    return [rng.randrange(256) for _ in range(count)]


# ----------------------------------------------------------------------
# GF(256) field axioms
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestFieldProperties:
    def test_addition_group(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            a, b, c = elements(rng, 3)
            assert gf256.add(a, b) == gf256.add(b, a)
            assert gf256.add(gf256.add(a, b), c) == gf256.add(a, gf256.add(b, c))
            assert gf256.add(a, 0) == a
            assert gf256.add(a, a) == 0  # characteristic 2: every element is its own inverse
            assert gf256.subtract(a, b) == gf256.add(a, b)

    def test_multiplication_group(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            a, b, c = elements(rng, 3)
            assert gf256.multiply(a, b) == gf256.multiply(b, a)
            assert gf256.multiply(gf256.multiply(a, b), c) == gf256.multiply(a, gf256.multiply(b, c))
            assert gf256.multiply(a, 1) == a
            assert gf256.multiply(a, 0) == 0
            if a != 0:
                assert gf256.multiply(a, gf256.inverse(a)) == 1
                assert gf256.divide(gf256.multiply(a, b), a) == b

    def test_distributivity(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            a, b, c = elements(rng, 3)
            left = gf256.multiply(a, gf256.add(b, c))
            right = gf256.add(gf256.multiply(a, b), gf256.multiply(a, c))
            assert left == right

    def test_power_matches_repeated_multiplication(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 5):
            a = rng.randrange(1, 256)
            exponent = rng.randrange(0, 12)
            expected = 1
            for _ in range(exponent):
                expected = gf256.multiply(expected, a)
            assert gf256.power(a, exponent) == expected
            # Negative exponents invert.
            if exponent:
                assert gf256.multiply(gf256.power(a, exponent), gf256.power(a, -exponent)) == 1

    def test_poly_divmod_identity(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 5):
            numerator = elements(rng, rng.randrange(1, 9))
            denominator = elements(rng, rng.randrange(1, 5))
            if all(value == 0 for value in denominator):
                denominator[-1] = rng.randrange(1, 256)
            quotient, remainder = gf256.poly_divmod(numerator, denominator)
            # numerator == quotient * denominator + remainder
            recomposed = gf256.poly_add(gf256.poly_multiply(quotient, denominator), remainder)
            width = max(len(numerator), len(recomposed))
            padded_num = list(numerator) + [0] * (width - len(numerator))
            padded_rec = list(recomposed) + [0] * (width - len(recomposed))
            assert padded_num == padded_rec

    def test_poly_eval_is_a_ring_homomorphism(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 5):
            p = elements(rng, rng.randrange(1, 6))
            q = elements(rng, rng.randrange(1, 6))
            x = rng.randrange(256)
            assert gf256.poly_eval(gf256.poly_add(p, q), x) == gf256.add(
                gf256.poly_eval(p, x), gf256.poly_eval(q, x)
            )
            assert gf256.poly_eval(gf256.poly_multiply(p, q), x) == gf256.multiply(
                gf256.poly_eval(p, x), gf256.poly_eval(q, x)
            )

    def test_out_of_range_rejected(self, seed):
        rng = random.Random(seed)
        bad = rng.choice([-1, 256, 1000])
        with pytest.raises(ValueError):
            gf256.add(bad, 0)
        with pytest.raises(ZeroDivisionError):
            gf256.inverse(0)


# ----------------------------------------------------------------------
# Reed-Solomon round-trip identities
# ----------------------------------------------------------------------
def random_code(rng):
    total = rng.randrange(2, 14)
    data = rng.randrange(1, total + 1)
    return ReedSolomonCode(total, data)


def random_blob(rng, max_length=48):
    return bytes(rng.randrange(256) for _ in range(rng.randrange(0, max_length)))


@pytest.mark.parametrize("seed", SEEDS)
class TestReedSolomonProperties:
    def test_roundtrip_with_all_fragments(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 2):
            code = random_code(rng)
            blob = random_blob(rng)
            assert code.decode(code.encode(blob)) == blob

    def test_roundtrip_under_maximum_erasures(self, seed):
        # Erasure-only decoding succeeds from *any* k of the n fragments.
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 2):
            code = random_code(rng)
            blob = random_blob(rng)
            fragments = code.encode(blob)
            keep = rng.sample(fragments, code.data_symbols)
            assert code.decode(keep) == blob

    def test_roundtrip_with_correctable_errors(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 5):
            total = rng.randrange(5, 14)
            data = rng.randrange(1, max(2, total - 3))
            code = ReedSolomonCode(total, data)
            blob = random_blob(rng)
            fragments = code.encode(blob)
            budget = code.max_correctable_errors(total)
            corrupt = rng.sample(range(total), rng.randrange(0, budget + 1))
            tampered = [
                Fragment(
                    index=fragment.index,
                    symbols=tuple((symbol + 1 + rng.randrange(255)) % 256 for symbol in fragment.symbols),
                    blob_length=fragment.blob_length,
                )
                if fragment.index in corrupt
                else fragment
                for fragment in fragments
            ]
            assert code.decode(tampered) == blob

    def test_k_equals_one_decodes_from_a_single_fragment(self, seed):
        rng = random.Random(seed)
        for total in (1, 2, 7):
            code = ReedSolomonCode(total, 1)
            blob = random_blob(rng)
            fragments = code.encode(blob)
            survivor = rng.choice(fragments)
            assert code.decode([survivor]) == blob

    def test_too_few_fragments_raise(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 5):
            code = random_code(rng)
            if code.data_symbols < 2:
                continue
            blob = random_blob(rng)
            fragments = code.encode(blob)
            keep = rng.sample(fragments, code.data_symbols - 1)
            with pytest.raises(DecodingError):
                code.decode(keep)

    def test_empty_and_exact_multiple_blob_lengths(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED // 5):
            code = random_code(rng)
            for length in (0, code.data_symbols, 3 * code.data_symbols):
                blob = bytes(rng.randrange(256) for _ in range(length))
                assert code.decode(code.encode(blob)) == blob

    def test_duplicate_and_foreign_fragments_are_ignored(self, seed):
        rng = random.Random(seed)
        code = ReedSolomonCode(6, 3)
        blob = random_blob(rng)
        fragments = code.encode(blob)
        noisy = list(fragments) + fragments[:2] + [
            Fragment(index=99, symbols=fragments[0].symbols, blob_length=len(blob)),
            "not a fragment",
        ]
        assert code.decode(noisy) == blob
