"""Tests for the experiment drivers (classification, complexity, lower bound, partitioning)."""

import pytest

from repro.analysis import (
    classify_standard_properties,
    dolev_reischuk_threshold,
    figure1_report,
    fit_growth_exponent,
    run_lower_bound_experiment,
    run_partitioning_attack,
    run_universal_execution,
    sample_validity_property_space,
    sweep_universal_complexity,
)
from repro.core import SystemConfig


class TestClassificationExperiment:
    def test_named_properties_n_gt_3t(self):
        results = classify_standard_properties(SystemConfig(4, 1), [0, 1])
        assert results["strong"].solvable and not results["strong"].trivial
        assert results["weak"].solvable
        assert results["constant"].trivial and results["constant"].solvable
        assert results["free"].trivial

    def test_named_properties_n_le_3t_only_trivial_solvable(self):
        results = classify_standard_properties(SystemConfig(3, 1), [0, 1])
        for key, classification in results.items():
            if classification.solvable:
                assert classification.trivial, key

    def test_sampled_space_is_consistent_with_figure_1(self):
        system = SystemConfig(3, 1)
        counts = sample_validity_property_space(system, [0, 1], [0, 1], samples=25, seed=3)
        assert counts.total == 25
        assert counts.consistent_with_figure_1(system)
        assert counts.trivial <= counts.solvable <= counts.satisfying_similarity_condition

    def test_sampled_space_requires_positive_samples(self):
        with pytest.raises(ValueError):
            sample_validity_property_space(SystemConfig(3, 1), [0, 1], [0, 1], samples=0)

    def test_figure1_report_rows(self):
        report = figure1_report(SystemConfig(4, 1), domain=(0, 1), samples=5, seed=1)
        rows = report.named_rows()
        assert {row["property"] for row in rows} >= {"strong", "weak", "free"}
        assert report.sampled is not None and report.sampled.total == 5


class TestComplexityExperiment:
    def test_fit_growth_exponent_recovers_known_powers(self):
        sizes = [4, 8, 16, 32]
        assert abs(fit_growth_exponent(sizes, [n**2 for n in sizes]) - 2.0) < 1e-9
        assert abs(fit_growth_exponent(sizes, [7 * n**3 for n in sizes]) - 3.0) < 1e-9

    def test_fit_growth_exponent_validates_input(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([4], [16])
        with pytest.raises(ValueError):
            fit_growth_exponent([4, 4], [16, 16])

    def test_run_universal_execution_report(self):
        report = run_universal_execution(SystemConfig(4, 1), property_key="strong", seed=2)
        assert report.agreement and report.all_decided and report.validity_satisfied
        assert report.message_complexity > 0
        assert report.communication_complexity >= report.message_complexity
        row = report.summary_row()
        assert row["n"] == 4 and row["valid"]

    def test_sweep_produces_monotone_message_counts(self):
        sweep = sweep_universal_complexity([4, 7], seed=2)
        assert sweep.sizes() == [4, 7]
        assert sweep.messages()[1] > sweep.messages()[0]
        assert all(report.agreement for report in sweep.rows)

    def test_sweep_growth_exponent_is_subcubic(self):
        sweep = sweep_universal_complexity([4, 7, 10], seed=2)
        assert sweep.message_growth_exponent() < 3.0


class TestLowerBoundExperiment:
    def test_threshold_formula(self):
        assert dolev_reischuk_threshold(SystemConfig(10, 3)) == 4
        assert dolev_reischuk_threshold(SystemConfig(13, 4)) == 4
        assert dolev_reischuk_threshold(SystemConfig(16, 5)) == 9

    def test_cheap_protocol_is_attacked_but_universal_is_not(self):
        report = run_lower_bound_experiment(n=7, seed=2)
        assert report.cheap_agreement_violated
        assert not report.universal_agreement_violated
        assert report.universal_exceeds_threshold
        assert report.cheap_messages < report.universal_messages

    def test_victim_must_not_be_the_leader(self):
        with pytest.raises(ValueError):
            run_lower_bound_experiment(n=7, victim=0)


class TestPartitioningExperiment:
    def test_attack_succeeds_at_n_equal_3t(self):
        report = run_partitioning_attack(t=1, seed=2)
        assert report.system.n == 3
        assert report.all_correct_decided
        assert report.agreement_violated
        assert set(report.decisions_a.values()) == {0}
        assert set(report.decisions_c.values()) == {1}

    def test_attack_fails_when_n_gt_3t(self):
        report = run_partitioning_attack(t=2, system=SystemConfig(7, 2), seed=2)
        assert not report.agreement_violated
        assert report.all_correct_decided
