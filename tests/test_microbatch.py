"""Microbatched dispatch: a pure throughput knob, never a semantics knob.

The runner amortizes pickle/pool overhead by shipping *batches* of tasks
per worker dispatch (``batch_size``, default sized automatically).  The
contract this file pins down: every batch size — serial, 1, small, larger
than the sweep, auto — produces **byte-identical** result sequences; a warm
store still serves an identical re-sweep with zero dispatches; and
supervision stays *per-task* under batching — a crashed batch is split and
re-dispatched so that exactly the poison task is quarantined, never its
innocent batch-mates.
"""

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.runner import POISON_ERROR_PREFIX, Runner
from repro.experiments.scenario import find_scenarios
from repro.jobs import EXIT_CONFIG, ExecutionSession, SweepJob
from repro.resilience import FaultPlan, RetryPolicy
from repro.store import RunStore

SLICE = [
    "binary+silent+synchronous",
    "quad+silent+synchronous",
    "binary+crash+synchronous",
    "quad+crash+synchronous",
]
SEEDS = [1, 2]
BATCH_SIZES = [1, 3, 7, None]  # unit, mid-sweep split, ragged tail, auto

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0)


def canonical_results(results):
    return [result.canonical_json() for result in results]


def sweep(batch_size=None, **runner_kwargs):
    runner = Runner(batch_size=batch_size, **runner_kwargs)
    try:
        return canonical_results(runner.iter_runs(find_scenarios(SLICE), SEEDS)), runner
    finally:
        runner.close()


# ----------------------------------------------------------------------
# Byte-identity across batch sizes
# ----------------------------------------------------------------------
class TestBatchSizeByteIdentity:
    def test_every_batch_size_matches_the_serial_sweep(self):
        baseline, _ = sweep()  # serial: batch_size is ignored entirely
        for batch_size in BATCH_SIZES:
            parallel, runner = sweep(batch_size=batch_size, parallel=2)
            assert parallel == baseline, f"batch_size={batch_size} diverged"
            assert runner.supervision.dispatched == len(SLICE) * len(SEEDS)

    def test_serial_sweep_ignores_batch_size(self):
        baseline, _ = sweep()
        serial_batched, runner = sweep(batch_size=5)
        assert serial_batched == baseline
        assert runner.supervision.dispatched == 0  # serial path never batches

    def test_oversized_batch_is_one_dispatch(self):
        baseline, _ = sweep()
        huge, runner = sweep(batch_size=100, parallel=2)
        assert huge == baseline
        assert runner.supervision.dispatched == len(SLICE) * len(SEEDS)


# ----------------------------------------------------------------------
# Auto batch sizing
# ----------------------------------------------------------------------
class TestEffectiveBatchSize:
    def test_explicit_size_always_wins(self):
        runner = Runner(parallel=4, batch_size=7)
        assert runner._effective_batch_size(1) == 7
        assert runner._effective_batch_size(10**6) == 7
        runner.close()

    def test_auto_scales_with_misses_and_is_capped(self):
        runner = Runner(parallel=4)
        assert runner._effective_batch_size(5) == 1  # tiny sweeps stay unbatched
        assert runner._effective_batch_size(100) == 100 // 8
        assert runner._effective_batch_size(10**6) == Runner.MAX_AUTO_BATCH
        runner.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            Runner(batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            ExecutionSession(batch_size=-3)

    def test_session_threads_batch_size_into_its_runner(self):
        with ExecutionSession(parallel=2, batch_size=4) as session:
            assert session.runner.batch_size == 4


# ----------------------------------------------------------------------
# Warm store: an identical re-sweep dispatches nothing
# ----------------------------------------------------------------------
class TestWarmStoreUnderBatching:
    def test_second_sweep_executes_zero_runs(self, tmp_path):
        scenarios = find_scenarios(SLICE)
        with RunStore(tmp_path / "runs.db") as store:
            cold = Runner(parallel=2, batch_size=3)
            try:
                first = canonical_results(cold.iter_runs(scenarios, SEEDS, store=store))
                assert cold.supervision.dispatched == len(scenarios) * len(SEEDS)
            finally:
                cold.close()
            warm = Runner(parallel=2, batch_size=3)
            try:
                second = canonical_results(warm.iter_runs(scenarios, SEEDS, store=store))
                assert warm.supervision.dispatched == 0
            finally:
                warm.close()
        assert second == first

    def test_partial_cache_dispatches_only_the_misses(self, tmp_path):
        scenarios = find_scenarios(SLICE)
        with RunStore(tmp_path / "runs.db") as store:
            seeded = Runner()
            try:
                list(seeded.iter_runs(scenarios[:2], SEEDS, store=store))
            finally:
                seeded.close()
            topped_up = Runner(parallel=2, batch_size=3)
            try:
                results = canonical_results(topped_up.iter_runs(scenarios, SEEDS, store=store))
                assert topped_up.supervision.dispatched == 2 * len(SEEDS)
            finally:
                topped_up.close()
        baseline, _ = sweep()
        assert results == baseline


# ----------------------------------------------------------------------
# Supervision stays per-task inside a batch
# ----------------------------------------------------------------------
class TestBatchSupervision:
    def test_crashed_batch_recovers_every_member(self):
        baseline, _ = sweep()
        plan = FaultPlan(seed=1, worker_crash=(1, 4))
        runner = Runner(parallel=2, batch_size=3, retry_policy=FAST_RETRY, fault_plan=plan)
        try:
            survived = canonical_results(runner.iter_runs(find_scenarios(SLICE), SEEDS))
            assert runner.supervision.crashes_detected >= 1
            assert runner.supervision.quarantined == 0
        finally:
            runner.close()
        assert survived == baseline

    @pytest.mark.parametrize("batch_size", [2, 3, 8])
    def test_poison_quarantines_exactly_the_affected_task(self, batch_size):
        # Task 2 is poison (crashes on every attempt).  Under batching its
        # whole batch crashes with it, but recovery splits the batch into
        # singletons: batch-mates must complete normally and only task 2 may
        # be quarantined — with the same attempt accounting as unbatched.
        scenarios = find_scenarios(SLICE)
        plan = FaultPlan(poison=(2,))
        runner = Runner(parallel=2, batch_size=batch_size, retry_policy=FAST_RETRY, fault_plan=plan)
        try:
            results = list(runner.iter_runs(scenarios, SEEDS))
        finally:
            runner.close()
        poisoned = [r for r in results if r.error and r.error.startswith(POISON_ERROR_PREFIX)]
        healthy = [r for r in results if r.completed]
        assert len(results) == len(scenarios) * len(SEEDS)
        assert len(poisoned) == 1
        assert f"after {FAST_RETRY.max_attempts} attempt(s)" in poisoned[0].error
        assert len(healthy) == len(results) - 1
        assert runner.supervision.quarantined == 1
        # The survivors are byte-identical to the fault-free sweep: exactly
        # one baseline record (the quarantined task's) is missing.
        baseline, _ = sweep()
        baseline_set = set(baseline)
        healthy_json = set(canonical_results(healthy))
        assert healthy_json <= baseline_set
        assert len(baseline_set - healthy_json) == 1


# ----------------------------------------------------------------------
# The CLI / session surface
# ----------------------------------------------------------------------
class TestBatchSizeCLI:
    @pytest.mark.parametrize("command", ["run", "analyze", "fuzz"])
    @pytest.mark.parametrize("value", ["0", "-2", "three"])
    def test_batch_size_validated_at_parse_time(self, command, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([command, "--batch-size", value])
        assert excinfo.value.code == EXIT_CONFIG
        assert "expected a positive integer" in capsys.readouterr().err

    def test_batched_cli_sweep_matches_unbatched_store(self, tmp_path, capsys):
        base = ["run", "--scenario"] + SLICE + ["--seeds", "2", "--quiet"]
        assert cli_main(base + ["--store", str(tmp_path / "plain.db")]) == 0
        batched = base + ["--parallel", "2", "--batch-size", "3"]
        assert cli_main(batched + ["--store", str(tmp_path / "batched.db")]) == 0
        capsys.readouterr()
        with RunStore(tmp_path / "plain.db") as plain, RunStore(tmp_path / "batched.db") as fast:
            plain_records = sorted(r.canonical_json() for r in plain.iter_records())
            batched_records = sorted(r.canonical_json() for r in fast.iter_records())
        assert plain_records == batched_records
        assert len(plain_records) == len(SLICE) * 2

    def test_session_sweep_job_respects_batch_size(self, tmp_path):
        from repro.jobs import select_scenarios, specs_to_payloads

        scenarios = select_scenarios(SLICE)
        job = SweepJob(specs_to_payloads(scenarios), seeds=(1,), collect_records=True)
        with ExecutionSession(parallel=2, batch_size=2, store_path=tmp_path / "runs.db") as session:
            outcome = session.submit(job)
            assert session.runner.supervision.dispatched == len(SLICE)
        # The batched job's records are byte-identical to a serial sweep.
        produced = canonical_results(outcome.records)
        assert produced == canonical_results(Runner().iter_runs(scenarios, [1]))
