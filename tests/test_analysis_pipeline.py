"""The analyze pipeline: deterministic verdicts, store caching, cross-checks."""

import json

import pytest

from repro.analysis.pipeline import (
    AnalysisError,
    PropertyTask,
    classification_method,
    classify_task,
    cross_check_matrix,
    cross_check_tasks,
    dedupe_tasks,
    default_tasks,
    diff_verdicts,
    enumerated_tasks,
    enumeration_cost,
    load_verdict_baseline,
    named_tasks,
    run_analysis,
    sampled_tasks,
    verdicts_to_json,
    verdicts_to_payload,
)
from repro.core.system import SystemConfig
from repro.experiments.cli import main
from repro.experiments.runner import Runner
from repro.store import RunStore

# A fast slice of the default family: every family represented, both
# resilience regimes, a couple of seconds to classify serially.
FAST_TASKS = (
    named_tasks(systems=((3, 1, (0, 1)), (4, 1, (0, 1))))
    + enumerated_tasks(count=6)
    + sampled_tasks(count=4)
)


def verdict_trace(verdicts):
    return [verdict.canonical_json() for verdict in verdicts]


class TestPropertyTasks:
    def test_default_family_is_at_least_fifty_properties(self):
        tasks = default_tasks()
        assert len(tasks) >= 50
        assert {task.family for task in tasks} == {"named", "enumerated", "sampled"}

    def test_labels_are_unique_across_default_and_cross_check_tasks(self):
        tasks = default_tasks() + cross_check_tasks()
        deduped = dedupe_tasks(tasks)
        labels = [task.label for task in deduped]
        assert len(labels) == len(set(labels))

    def test_dedupe_rejects_distinct_tasks_with_one_label(self):
        task = PropertyTask(family="named", key="strong", n=4, t=1, domain=(0, 1))
        clash = PropertyTask(family="named", key="strong", n=4, t=1, domain=(0, 1), index=7)
        assert clash.label == task.label  # named labels elide the index
        with pytest.raises(AnalysisError):
            dedupe_tasks([task, clash])

    def test_fingerprint_tracks_content(self):
        task = PropertyTask(family="named", key="strong", n=4, t=1, domain=(0, 1))
        same = PropertyTask(family="named", key="strong", n=4, t=1, domain=(0, 1))
        other = PropertyTask(family="named", key="strong", n=4, t=1, domain=(0, 1, 2))
        assert task.fingerprint() == same.fingerprint()
        assert task.fingerprint() != other.fingerprint()


class TestClassifyTask:
    def test_verdict_roundtrips_through_canonical_json(self):
        from repro.analysis.pipeline import AnalysisVerdict

        for task in (FAST_TASKS[0], FAST_TASKS[-1]):
            verdict = classify_task(task)
            rebuilt = AnalysisVerdict.from_dict(json.loads(verdict.canonical_json()))
            assert rebuilt == verdict
            assert rebuilt.canonical_json() == verdict.canonical_json()

    def test_closed_form_oracle_matches_enumeration(self):
        # Wherever both methods are affordable they must agree on every
        # discrete fact — the justification for trusting the closed form on
        # the large matrix systems.
        for n, t, domain in ((4, 1, (0, 1)), (4, 1, (0, 1, 2)), (5, 1, (0, 1))):
            for key in ("strong", "weak", "correct-proposal", "median", "interval",
                        "convex-hull", "constant", "free"):
                task = PropertyTask(family="named", key=key, n=n, t=t, domain=domain)
                enumerated = classify_task(task)
                closed = classify_task(task, budget=0)
                assert enumerated.method == "enumeration"
                assert closed.method == "closed-form"
                for field in ("trivial", "satisfies_similarity_condition", "solvable",
                              "witness", "always_admissible"):
                    assert getattr(enumerated, field) == getattr(closed, field), (
                        task.label, field)

    def test_fitzi_garay_bound_flips_correct_proposal_within_the_family(self):
        solvable = classify_task(
            PropertyTask(family="named", key="correct-proposal", n=4, t=1, domain=(0, 1))
        )
        unsolvable = classify_task(
            PropertyTask(family="named", key="correct-proposal", n=4, t=1, domain=(0, 1, 2))
        )
        assert solvable.solvable and not unsolvable.solvable

    def test_quadratic_threshold_rides_along(self):
        verdict = classify_task(
            PropertyTask(family="named", key="strong", n=10, t=3, domain=(0, 1, 2))
        )
        assert verdict.method == "closed-form"
        assert verdict.quadratic_threshold == 4
        assert "Omega(t^2)" in verdict.message_bound

    def test_over_budget_non_named_task_raises(self):
        task = PropertyTask(family="sampled", key="sampled", n=4, t=1, domain=(0, 1))
        with pytest.raises(AnalysisError):
            classify_task(task, budget=0)

    def test_over_budget_named_task_without_byzantine_resilience_raises(self):
        task = PropertyTask(family="named", key="strong", n=3, t=1, domain=(0, 1))
        with pytest.raises(AnalysisError):
            classify_task(task, budget=0)

    def test_enumeration_cost_is_monotone_in_system_and_domain(self):
        assert enumeration_cost(SystemConfig(4, 1), 2) < enumeration_cost(SystemConfig(4, 1), 3)
        assert enumeration_cost(SystemConfig(4, 1), 2) < enumeration_cost(SystemConfig(7, 2), 2)
        large = PropertyTask(family="named", key="strong", n=10, t=3, domain=(0, 1, 2))
        assert classification_method(large) == "closed-form"


class TestRunAnalysisDeterminism:
    def test_serial_equals_parallel_byte_identically(self):
        serial = run_analysis(FAST_TASKS)
        with Runner(parallel=4) as runner:
            parallel = run_analysis(FAST_TASKS, runner=runner)
        assert verdict_trace(serial.verdicts) == verdict_trace(parallel.verdicts)

    def test_warm_store_classifies_nothing_and_is_byte_identical(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            cold = run_analysis(FAST_TASKS, store=store)
            assert cold.classified == len(dedupe_tasks(FAST_TASKS)) and cold.cached == 0
        with RunStore(path) as store:
            warm = run_analysis(FAST_TASKS, store=store)
            assert warm.classified == 0 and warm.cached == len(dedupe_tasks(FAST_TASKS))
            assert store.stats.verdict_hits == warm.cached
        assert verdict_trace(cold.verdicts) == verdict_trace(warm.verdicts)

    def test_analysis_code_fingerprint_invalidates_cached_verdicts(self, tmp_path):
        path = tmp_path / "runs.db"
        tasks = FAST_TASKS[:3]
        with RunStore(path) as store:
            run_analysis(tasks, store=store)
        with RunStore(path, analysis_code_fp="analysis-changed") as store:
            rerun = run_analysis(tasks, store=store)
            assert rerun.cached == 0 and rerun.classified == len(tasks)
            # Both generations coexist under their own fingerprints.
            assert store.count_verdicts(any_code=True) == 2 * len(tasks)
            assert store.count_verdicts() == len(tasks)

    def test_rerun_reclassifies_despite_cache(self, tmp_path):
        path = tmp_path / "runs.db"
        tasks = FAST_TASKS[:3]
        with RunStore(path) as store:
            run_analysis(tasks, store=store)
        with RunStore(path) as store:
            rerun = run_analysis(tasks, store=store, rerun=True)
            assert rerun.cached == 0 and rerun.classified == len(tasks)

    def test_vacuum_stale_drops_other_analysis_fingerprints(self, tmp_path):
        path = tmp_path / "runs.db"
        tasks = FAST_TASKS[:2]
        with RunStore(path, analysis_code_fp="old-analysis") as store:
            run_analysis(tasks, store=store)
        with RunStore(path) as store:
            run_analysis(tasks, store=store)
            assert store.vacuum_stale() == len(tasks)
            assert store.count_verdicts(any_code=True) == len(tasks)


class TestVerdictBaseline:
    def test_write_load_diff_roundtrip(self, tmp_path):
        verdicts = run_analysis(FAST_TASKS[:5]).verdicts
        path = tmp_path / "verdicts.json"
        path.write_text(verdicts_to_json(verdicts) + "\n")
        baseline = load_verdict_baseline(path)
        assert diff_verdicts(verdicts, baseline) == []

    def test_diff_catches_changed_missing_and_novel_verdicts(self, tmp_path):
        verdicts = run_analysis(FAST_TASKS[:4]).verdicts
        payload = verdicts_to_payload(verdicts)
        tampered_label = verdicts[0].label
        payload["verdicts"][tampered_label]["solvable"] = not payload["verdicts"][tampered_label][
            "solvable"
        ]
        payload["verdicts"]["ghost:property:n9:t2:d0-1"] = payload["verdicts"][tampered_label]
        path = tmp_path / "verdicts.json"
        path.write_text(json.dumps(payload))
        divergences = diff_verdicts(verdicts[:-1], load_verdict_baseline(path))
        text = "\n".join(divergences)
        assert "solvable changed" in text
        assert "ghost:property:n9:t2:d0-1: verdict missing" in text
        assert f"{verdicts[-1].label}: verdict missing" in text

    def test_baseline_format_version_is_checked(self, tmp_path):
        path = tmp_path / "verdicts.json"
        path.write_text(json.dumps({"format_version": 99, "verdicts": {}}))
        with pytest.raises(ValueError):
            load_verdict_baseline(path)


class TestCrossCheck:
    def classified_matrix_verdicts(self):
        return run_analysis(cross_check_tasks()).by_label()

    def test_committed_matrix_baseline_has_zero_divergences(self):
        from repro.experiments.aggregate import load_baseline

        summaries = load_baseline("benchmarks/baselines/scenario_matrix.json")
        result = cross_check_matrix(self.classified_matrix_verdicts(), summaries)
        assert result.divergences == []
        assert result.checked > 0
        # Every matrix scenario is either checked or explicitly skipped.
        from repro.experiments.scenario import default_matrix

        assert result.checked + len(result.skipped) == len(default_matrix())

    def test_violations_under_a_solvable_property_diverge(self):
        from repro.experiments.aggregate import load_baseline

        summaries = dict(load_baseline("benchmarks/baselines/scenario_matrix.json"))
        name = "universal-authenticated+none+synchronous"
        summaries[name] = dict(summaries[name], validity_violations=2)
        result = cross_check_matrix(self.classified_matrix_verdicts(), summaries)
        assert any(name in divergence for divergence in result.divergences)

    def test_passing_protocol_for_unsolvable_property_diverges(self):
        from repro.experiments.scenario import default_matrix

        scenario = next(
            spec for spec in default_matrix() if spec.protocol.startswith("universal")
        )
        # Pretend the scenario targeted a property the classifier rejects:
        # correct-proposal over three values at n = 4, t = 1 violates the
        # Fitzi-Garay bound, so a cleanly passing sweep must be flagged.
        impossible = scenario.with_(property_key="correct-proposal")
        verdicts = run_analysis(cross_check_tasks([impossible])).by_label()
        clean_summary = {
            impossible.name: {
                "errors": 0,
                "incomplete": 0,
                "agreement_violations": 0,
                "validity_violations": 0,
            }
        }
        result = cross_check_matrix(verdicts, clean_summary, scenarios=[impossible])
        assert len(result.divergences) == 1
        assert "unsolvable" in result.divergences[0]

    def test_missing_verdict_is_a_divergence_not_a_skip(self):
        from repro.experiments.scenario import default_matrix

        scenario = next(
            spec for spec in default_matrix() if spec.protocol.startswith("universal")
        )
        result = cross_check_matrix({}, {}, scenarios=[scenario])
        assert result.checked == 0
        assert any("no verdict classified" in divergence for divergence in result.divergences)


class TestAnalyzeCli:
    def test_analyze_family_slice_with_store_and_baseline(self, tmp_path, capsys):
        store_path = tmp_path / "runs.db"
        baseline = tmp_path / "verdicts.json"
        markdown = tmp_path / "verdicts.md"
        argv = [
            "analyze",
            "--family",
            "sampled",
            "--no-cross-check",
            "--store",
            str(store_path),
            "--write-baseline",
            str(baseline),
            "--markdown",
            str(markdown),
        ]
        assert main(argv) == 0
        assert "| property |" in markdown.read_text()
        # Second invocation: pure cache hits, and the baseline check passes.
        assert main(argv[:6] + ["--require-cached", "--check-baseline", str(baseline)]) == 0
        output = capsys.readouterr().out
        assert "16 cached, 0 classified" in output

    def test_analyze_fails_on_tampered_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "verdicts.json"
        argv = ["analyze", "--family", "sampled", "--no-cross-check", "--quiet"]
        assert main(argv + ["--write-baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        first = sorted(payload["verdicts"])[0]
        payload["verdicts"][first]["solvable"] = not payload["verdicts"][first]["solvable"]
        baseline.write_text(json.dumps(payload))
        assert main(argv + ["--check-baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_analyze_rejects_contradictory_flags(self, capsys):
        assert main(["analyze", "--require-cached"]) == 2
        assert main(["analyze", "--rerun"]) == 2
        capsys.readouterr()
