"""Tests for the Appendix C extended formalism and the committee-blockchain example."""

import pytest

from repro.core import InputConfiguration, SystemConfig, UniversalSpec, ValidityProperty
from repro.core.extended import (
    ClientWallet,
    DiscoveryModel,
    ExtendedInputConfiguration,
    TransactionVerifier,
    batch_decision_rule,
    batch_discovery,
    external_validity_property,
)
from repro.consensus import universal_process_factory
from repro.sim import Simulation, SynchronousDelayModel, silent_factory


@pytest.fixture()
def wallets():
    return {name: ClientWallet(name) for name in ("alice", "bob", "carol")}


@pytest.fixture()
def verifier():
    return TransactionVerifier()


class TestTransactions:
    def test_issued_transactions_verify(self, wallets, verifier):
        tx = wallets["alice"].issue(1, "pay bob 5")
        assert verifier.transaction_is_valid(tx)

    def test_forged_transactions_rejected(self, wallets, verifier):
        tx = wallets["alice"].issue(1, "pay bob 5")
        forged = type(tx)(client="alice", sequence_number=2, payload="pay mallory 99", signature=tx.signature)
        assert not verifier.transaction_is_valid(forged)

    def test_batch_validity_rejects_double_spend(self, wallets, verifier):
        tx1 = wallets["alice"].issue(1, "pay bob 5")
        tx2 = wallets["alice"].issue(1, "pay carol 5")
        assert verifier.batch_is_valid((tx1,))
        assert not verifier.batch_is_valid((tx1, tx2)), "same (client, sequence) twice is a double spend"

    def test_batch_validity_rejects_non_batches(self, verifier):
        assert not verifier.batch_is_valid("not a batch")


class TestDiscovery:
    def test_discovery_contains_concatenations(self, wallets, verifier):
        tx1 = wallets["alice"].issue(1, "a")
        tx2 = wallets["bob"].issue(1, "b")
        discovered = batch_discovery({tx1, tx2})
        assert (tx1,) in discovered
        assert (tx1, tx2) in discovered and (tx2, tx1) in discovered

    def test_discovery_ignores_invalid_inputs(self, wallets, verifier):
        tx = wallets["alice"].issue(1, "a")
        model = external_validity_property(verifier).discovery
        discovered = model.discover({tx, "garbage"})
        assert all(all(isinstance(item, type(tx)) for item in batch) for batch in discovered)

    def test_discovery_is_monotone(self, wallets, verifier):
        tx1 = wallets["alice"].issue(1, "a")
        tx2 = wallets["bob"].issue(1, "b")
        model = external_validity_property(verifier).discovery
        assert model.check_monotone([({tx1}, {tx1, tx2}), (set(), {tx1})])

    def test_check_monotone_rejects_bad_chains(self, wallets, verifier):
        tx1 = wallets["alice"].issue(1, "a")
        model = external_validity_property(verifier).discovery
        with pytest.raises(ValueError):
            model.check_monotone([({tx1}, set())])


class TestExtendedConfigurationsAndAssumptions:
    def test_adversary_pool_must_be_empty_when_all_correct(self, wallets):
        config = InputConfiguration.from_mapping({0: (), 1: (), 2: (), 3: ()})
        tx = wallets["alice"].issue(1, "a")
        with pytest.raises(ValueError):
            ExtendedInputConfiguration.build(config, adversary_pool=[tx], n=4)
        ExtendedInputConfiguration.build(config, adversary_pool=[], n=4)

    def test_assumptions_distinguish_hidden_adversary_knowledge(self, wallets, verifier):
        tx_public = wallets["alice"].issue(1, "a")
        tx_hidden = wallets["bob"].issue(1, "b")
        prop = external_validity_property(verifier)
        config = InputConfiguration.from_mapping({0: (tx_public,), 1: (tx_public,), 2: (tx_public,)})
        extended = ExtendedInputConfiguration.build(config, adversary_pool=[tx_hidden], n=4)

        batch_with_hidden = (tx_public, tx_hidden)
        # Admissible (discoverable with the adversary pool), hence Assumption 1 holds...
        assert prop.is_admissible(extended, batch_with_hidden)
        assert prop.execution_respects_assumptions(extended, batch_with_hidden, canonical=False)
        # ...but in a canonical execution the hidden transaction cannot be used.
        assert not prop.execution_respects_assumptions(extended, batch_with_hidden, canonical=True)
        assert prop.execution_respects_assumptions(extended, (tx_public,), canonical=True)

    def test_invalid_batches_are_never_admissible(self, wallets, verifier):
        tx = wallets["alice"].issue(1, "a")
        prop = external_validity_property(verifier)
        config = InputConfiguration.from_mapping({0: (tx,), 1: (tx,), 2: (tx,)})
        extended = ExtendedInputConfiguration.build(config, n=4)
        double_spend = (tx, wallets["alice"].issue(1, "conflicting"))
        assert not prop.is_admissible(extended, double_spend)


class TestBlockchainConsensusEndToEnd:
    def test_universal_decides_an_externally_valid_batch(self, wallets, verifier):
        """Servers run Universal; the decided batch satisfies External Validity."""
        system = SystemConfig(4, 1)
        transactions = {
            0: (wallets["alice"].issue(1, "pay bob 5"),),
            1: (wallets["bob"].issue(1, "pay carol 2"), wallets["alice"].issue(1, "pay bob 5")),
            2: (wallets["carol"].issue(1, "pay alice 1"),),
            3: (wallets["bob"].issue(1, "pay carol 2"),),
        }

        class BatchValidity(ValidityProperty):
            name = "external-validity-projection"

            def is_admissible(self, config, value):
                return verifier.batch_is_valid(value)

        spec = UniversalSpec(
            system=system,
            validity=BatchValidity(),
            decision_rule=batch_decision_rule(verifier),
        )
        sim = Simulation(system, delay_model=SynchronousDelayModel(seed=3))
        sim.populate(
            universal_process_factory(spec, transactions),
            faulty=[3],
            faulty_factory=silent_factory,
        )
        sim.run_until_all_correct_decide(until=5_000)
        assert sim.all_correct_decided()
        assert sim.agreement_holds()
        decided_batch = next(iter(sim.decisions().values()))
        assert verifier.batch_is_valid(decided_batch)
        assert len(decided_batch) >= 1

        prop = external_validity_property(verifier)
        extended = ExtendedInputConfiguration.build(
            InputConfiguration.from_mapping({pid: transactions[pid] for pid in sim.correct_processes})
        )
        assert prop.execution_respects_assumptions(extended, decided_batch, canonical=True)
