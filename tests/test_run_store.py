"""Persistent run store: fingerprints, SQLite cache, incremental sweeps.

The store's contract is the repo-wide determinism guarantee turned into
persistence: a ``RunResult`` is a pure function of
``(scenario fingerprint, seed, code fingerprint)``, so a stored record can
stand in for the execution byte-for-byte.  These tests pin that down —
cache hits are byte-identical to cold runs, interrupted sweeps resume from
the store, semantics changes invalidate via the code fingerprint — plus the
runner lifecycle fixes that ride along (idempotent ``close``, pool release
on abandoned generators).
"""

import json
import time

import pytest

from repro.experiments import (
    DEFAULT_SEED,
    Runner,
    RunResult,
    aggregate,
    execute_run,
    make_scenario,
    summaries_to_json,
    sweep_seeds,
)
from repro.experiments.runner import _timeout_result
from repro.experiments.scenario import PROTOCOLS
from repro.store import (
    RunStore,
    StoreFormatError,
    code_fingerprint,
    scenario_fingerprint,
    spec_payload,
)

SWEEP = [
    make_scenario("binary", "silent", "synchronous"),
    make_scenario("binary", "crash", "eventual"),
    make_scenario("quad", "silent", "synchronous"),
    make_scenario("universal-authenticated", "silent", "synchronous"),
]
SEEDS = (DEFAULT_SEED, DEFAULT_SEED + 1)


def canonical_trace(results):
    return "\n".join(result.canonical_json() for result in results)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_scenario_fingerprint_is_stable(self):
        spec = SWEEP[0]
        assert scenario_fingerprint(spec) == scenario_fingerprint(spec)
        rebuilt = make_scenario("binary", "silent", "synchronous")
        assert scenario_fingerprint(rebuilt) == scenario_fingerprint(spec)

    def test_every_field_steers_the_fingerprint(self):
        spec = SWEEP[0]
        base = scenario_fingerprint(spec)
        for changed in (
            spec.with_(n=7, t=2),
            spec.with_(name="renamed"),
            spec.with_(property_key="weak"),
            spec.with_(params=(("delta", 2.0),)),
            spec.with_(time_limit=5_000.0),
            spec.with_(max_events=1_000),
        ):
            assert scenario_fingerprint(changed) != base, changed

    def test_matrix_fingerprints_are_unique(self):
        from repro.experiments import default_matrix

        matrix = default_matrix()
        fingerprints = {scenario_fingerprint(spec) for spec in matrix}
        assert len(fingerprints) == len(matrix)

    def test_spec_payload_is_json_serialisable(self):
        spec = SWEEP[0].with_(params=(("proposals", ((0, 1), (1, 0), (2, 1), (3, 0))),))
        payload = spec_payload(spec)
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload

    def test_code_fingerprint_tracks_registry_changes(self, monkeypatch):
        base = code_fingerprint()
        assert base == code_fingerprint(), "must be stable within one process"

        def _different_builder(spec, system, seed):  # pragma: no cover - never run
            raise NotImplementedError

        monkeypatch.setitem(PROTOCOLS, "binary", _different_builder)
        assert code_fingerprint() != base
        monkeypatch.undo()
        assert code_fingerprint() == base


class TestRunResultRoundtrip:
    def test_from_dict_inverts_canonical_json(self):
        for spec in SWEEP:
            result = execute_run(spec, DEFAULT_SEED)
            rebuilt = RunResult.from_dict(json.loads(result.canonical_json()))
            assert rebuilt == result
            assert rebuilt.canonical_json() == result.canonical_json()

    def test_error_record_roundtrip(self):
        starved = SWEEP[0].with_(name="starved", max_events=5)
        result = execute_run(starved, DEFAULT_SEED)
        assert result.error is not None
        rebuilt = RunResult.from_dict(json.loads(result.canonical_json()))
        assert rebuilt == result


# ----------------------------------------------------------------------
# The store itself
# ----------------------------------------------------------------------
class TestRunStore:
    def test_put_get_roundtrip_and_persistence(self, tmp_path):
        path = tmp_path / "runs.db"
        spec = SWEEP[0]
        result = execute_run(spec, DEFAULT_SEED)
        with RunStore(path) as store:
            assert store.get(spec, DEFAULT_SEED) is None
            assert store.put(spec, result)
            assert store.get(spec, DEFAULT_SEED) == result
        with RunStore(path) as store:  # survives reopen (flushed on close)
            assert store.get(spec, DEFAULT_SEED) == result
            assert store.count() == 1

    def test_batched_writes_flush_at_threshold(self, tmp_path):
        path = tmp_path / "runs.db"
        spec = SWEEP[0]
        with RunStore(path, batch_size=2) as store:
            store.put(spec, execute_run(spec, DEFAULT_SEED))
            assert store._pending  # buffered, not yet written
            store.put(spec.with_(name="other"), execute_run(spec, DEFAULT_SEED + 1))
            assert not store._pending  # threshold reached -> one transaction
            assert store.count() == 2

    def test_pending_records_visible_before_flush(self, tmp_path):
        spec = SWEEP[0]
        result = execute_run(spec, DEFAULT_SEED)
        with RunStore(tmp_path / "runs.db", batch_size=1000) as store:
            store.put(spec, result)
            assert store.get(spec, DEFAULT_SEED) == result

    def test_lru_eviction_still_serves_from_disk(self, tmp_path):
        specs = [SWEEP[0].with_(name=f"s{i}") for i in range(4)]
        with RunStore(tmp_path / "runs.db", cache_size=2) as store:
            for spec in specs:
                store.put(spec, execute_run(SWEEP[0], DEFAULT_SEED))
            store.flush()
            assert len(store._lru) <= 2
            for spec in specs:  # evicted entries fall back to SQLite
                assert store.get(spec, DEFAULT_SEED) is not None

    def test_timeout_records_are_never_persisted(self, tmp_path):
        spec = SWEEP[0]
        timed_out = _timeout_result(spec, DEFAULT_SEED, timeout=0.1)
        with RunStore(tmp_path / "runs.db") as store:
            assert not store.put(spec, timed_out)
            assert store.count() == 0
            assert store.get(spec, DEFAULT_SEED) is None

    def test_deterministic_failures_are_persisted(self, tmp_path):
        starved = SWEEP[0].with_(name="starved", max_events=5)
        result = execute_run(starved, DEFAULT_SEED)
        assert result.error is not None
        with RunStore(tmp_path / "runs.db") as store:
            assert store.put(starved, result)
            assert store.get(starved, DEFAULT_SEED) == result

    def test_code_fingerprint_partitions_the_store(self, tmp_path):
        path = tmp_path / "runs.db"
        spec = SWEEP[0]
        result = execute_run(spec, DEFAULT_SEED)
        with RunStore(path, code_fp="old-code") as store:
            store.put(spec, result)
        with RunStore(path, code_fp="new-code") as store:
            assert store.get(spec, DEFAULT_SEED) is None  # stale entry invisible
            assert store.count() == 0
            assert store.count(any_code=True) == 1
            store.put(spec, result)
            assert [count for _, count in store.code_fingerprints()] == [1, 1]
            assert store.vacuum_stale() == 1
            assert store.count(any_code=True) == 1

    def test_any_code_prefers_current_and_never_double_counts(self, tmp_path):
        from repro.store import summarize_store

        path = tmp_path / "runs.db"
        healthy = SWEEP[0]
        starved_result = execute_run(healthy.with_(max_events=5), DEFAULT_SEED)
        healthy_result = execute_run(healthy, DEFAULT_SEED)
        with RunStore(path, code_fp="old-code") as store:
            store.put(healthy, starved_result)  # what "the old code" computed
        with RunStore(path) as store:
            store.put(healthy, healthy_result)
            assert store.count(any_code=True) == 2  # raw rows: both versions kept
            merged = list(store.iter_records(any_code=True))
            # ...but a (scenario, seed) pair aggregates exactly once, and the
            # current-code record wins over the stale one.
            assert merged == [healthy_result]
            summary = summarize_store(store, any_code=True)[healthy.name]
            assert summary.runs == 1 and summary.errors == 0
        # Without a current-code record the stale one is still readable.
        with RunStore(path, code_fp="new-code") as store:
            stale = list(store.iter_records(any_code=True))
            assert len(stale) == 1

    def test_any_code_dedups_same_named_scenarios_across_spec_versions(self, tmp_path):
        # The same scenario *name* can exist under different scenario
        # fingerprints (a param evolved between sweeps); any_code must still
        # aggregate one record per (name, seed), preferring current code.
        from repro.store import summarize_store

        path = tmp_path / "runs.db"
        spec_v1 = SWEEP[0].with_(time_limit=9_000.0)  # different scenario_fp, same name
        spec_v2 = SWEEP[0]
        assert scenario_fingerprint(spec_v1) != scenario_fingerprint(spec_v2)
        with RunStore(path, code_fp="old-code") as store:
            store.put(spec_v1, execute_run(spec_v1, DEFAULT_SEED))
        with RunStore(path) as store:
            current = execute_run(spec_v2, DEFAULT_SEED)
            store.put(spec_v2, current)
            assert store.count(any_code=True) == 2
            assert list(store.iter_records(any_code=True)) == [current]
            assert summarize_store(store, any_code=True)[spec_v2.name].runs == 1

    def test_iter_records_filters_and_order(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            with Runner() as runner:
                runner.run(SWEEP, SEEDS, store=store)
            everything = list(store.iter_records())
            assert len(everything) == len(SWEEP) * len(SEEDS)
            keys = [(record.scenario, record.seed) for record in everything]
            assert keys == sorted(keys)
            binary_only = list(store.iter_records(protocols=["binary"]))
            assert {record.scenario for record in binary_only} == {
                spec.name for spec in SWEEP if spec.protocol == "binary"
            }
            named = list(store.iter_records(scenarios=[SWEEP[0].name]))
            assert len(named) == len(SEEDS)

    def test_rejects_non_store_files(self, tmp_path):
        bogus = tmp_path / "not_a_store.db"
        bogus.write_text("definitely not sqlite\n" * 10)
        with pytest.raises(StoreFormatError):
            RunStore(bogus)

    def test_closed_store_raises_cleanly(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        store.close()
        store.close()  # idempotent
        with pytest.raises(RuntimeError):
            store.get(SWEEP[0], DEFAULT_SEED)


# ----------------------------------------------------------------------
# Incremental sweeps through the runner
# ----------------------------------------------------------------------
class TestIncrementalSweeps:
    def test_warm_sweep_executes_zero_runs_and_is_byte_identical(self, tmp_path, monkeypatch):
        path = tmp_path / "runs.db"
        with RunStore(path) as store, Runner() as runner:
            cold = runner.run(SWEEP, SEEDS, store=store)
            assert store.stats.misses == len(cold) and store.stats.hits == 0

        # Any execution attempt during the warm sweep is a test failure.
        def _forbidden(item):  # pragma: no cover - would mean a cache miss
            raise AssertionError(f"warm sweep executed {item}")

        monkeypatch.setattr("repro.experiments.runner._execute_with_timeout", _forbidden)
        with RunStore(path) as store, Runner() as runner:
            warm = runner.run(SWEEP, SEEDS, store=store)
            assert store.stats.hits == len(warm) and store.stats.misses == 0
        assert canonical_trace(warm) == canonical_trace(cold)
        assert summaries_to_json(aggregate(warm)) == summaries_to_json(aggregate(cold))

    def test_interrupted_sweep_resumes_from_the_store(self, tmp_path):
        path = tmp_path / "runs.db"
        total = len(SWEEP) * len(SEEDS)
        consumed = 3
        with RunStore(path) as store:
            runner = Runner()
            iterator = runner.iter_runs(SWEEP, SEEDS, store=store)
            partial = [next(iterator) for _ in range(consumed)]
            iterator.close()  # the "kill": abandon the sweep mid-matrix
        with RunStore(path) as store:
            assert store.count() == consumed
            with Runner() as runner:
                resumed = runner.run(SWEEP, SEEDS, store=store)
            assert store.stats.hits == consumed
            assert store.stats.misses == total - consumed
        assert canonical_trace(resumed[:consumed]) == canonical_trace(partial)
        assert canonical_trace(resumed) == canonical_trace(Runner().run(SWEEP, SEEDS))

    def test_rerun_recomputes_despite_cache(self, tmp_path, monkeypatch):
        path = tmp_path / "runs.db"
        with RunStore(path) as store, Runner() as runner:
            cold = runner.run(SWEEP[:1], SEEDS, store=store)
        executions = []
        from repro.experiments import runner as runner_module

        original = runner_module._execute_with_timeout

        def _counting(item):
            executions.append(item)
            return original(item)

        monkeypatch.setattr(runner_module, "_execute_with_timeout", _counting)
        with RunStore(path) as store, Runner() as runner:
            rerun = runner.run(SWEEP[:1], SEEDS, store=store, rerun=True)
            assert store.stats.hits == 0 and store.stats.stored == len(rerun)
        assert len(executions) == len(SEEDS)
        assert canonical_trace(rerun) == canonical_trace(cold)

    def test_parallel_mixed_hit_miss_sweep_keeps_order(self, tmp_path):
        path = tmp_path / "runs.db"
        half = SWEEP[::2]
        with RunStore(path) as store, Runner() as runner:
            runner.run(half, SEEDS, store=store)
        with RunStore(path) as store, Runner(parallel=2) as runner:
            mixed = runner.run(SWEEP, SEEDS, store=store)
            assert store.stats.hits == len(half) * len(SEEDS)
            assert store.stats.misses == (len(SWEEP) - len(half)) * len(SEEDS)
        expected = [(spec.name, seed) for spec in SWEEP for seed in SEEDS]
        assert [(result.scenario, result.seed) for result in mixed] == expected
        assert canonical_trace(mixed) == canonical_trace(Runner().run(SWEEP, SEEDS))

    def test_hits_before_the_first_miss_stream_immediately(self, tmp_path, monkeypatch):
        # With items [hit, hit, miss, miss] the two hits must be yielded as
        # soon as the parallel sweep starts, not buffered until the first
        # pool result lands; the misses are artificially slowed to prove it.
        from repro.experiments import runner as runner_module

        path = tmp_path / "runs.db"
        with RunStore(path) as store, Runner() as runner:
            runner.run(SWEEP[:2], (DEFAULT_SEED,), store=store)
        monkeypatch.setattr(runner_module, "_execute_indexed", _slow_execute_indexed)
        with RunStore(path) as store:
            runner = Runner(parallel=2)
            iterator = runner.iter_runs(SWEEP, (DEFAULT_SEED,), store=store)
            started = time.perf_counter()
            first = next(iterator)
            second = next(iterator)
            elapsed = time.perf_counter() - started
            assert {first.scenario, second.scenario} == {spec.name for spec in SWEEP[:2]}
            assert elapsed < 1.0, "cache hits waited on the slowed misses"
            iterator.close()  # abandon the slow misses; pool is terminated

    def test_trailing_cache_hits_are_yielded(self, tmp_path):
        # Hits *after* the last miss exercise the drain loop behind the pool.
        path = tmp_path / "runs.db"
        tail = SWEEP[2:]
        with RunStore(path) as store, Runner() as runner:
            runner.run(tail, SEEDS, store=store)
        with RunStore(path) as store, Runner(parallel=2) as runner:
            results = runner.run(SWEEP, SEEDS, store=store)
        assert [(r.scenario, r.seed) for r in results] == [
            (spec.name, seed) for spec in SWEEP for seed in SEEDS
        ]


def _slow_execute_indexed(indexed_item):
    """Worker stand-in (module-level so the pool can pickle it): a real run,
    delayed enough that a buffered cache hit would be caught waiting on it."""
    from repro.experiments.runner import _execute_with_timeout

    time.sleep(2.0)
    index, item = indexed_item
    return index, _execute_with_timeout(item)


# ----------------------------------------------------------------------
# Runner lifecycle (satellite fixes)
# ----------------------------------------------------------------------
class TestRunnerLifecycle:
    def test_close_is_idempotent_without_a_pool(self):
        runner = Runner(parallel=4)
        runner.close()
        runner.close()
        assert runner._pool is None

    def test_close_is_idempotent_after_a_sweep(self):
        runner = Runner(parallel=2)
        runner.run(SWEEP[:1], (DEFAULT_SEED,) * 1)
        runner.close()
        runner.close()
        assert runner._pool is None

    def test_close_survives_a_failed_pool_setup(self, monkeypatch):
        import multiprocessing

        runner = Runner(parallel=2)

        class _BrokenContext:
            def Pool(self, processes=None):
                raise OSError("no more processes")

        monkeypatch.setattr(multiprocessing, "get_context", lambda method: _BrokenContext())
        with pytest.raises(OSError):
            runner._ensure_pool()
        assert runner._pool is None
        runner.close()  # must not raise
        monkeypatch.undo()
        assert runner.run(SWEEP[:1], (DEFAULT_SEED,)) != []

    def test_abandoned_parallel_iterator_releases_the_pool(self):
        runner = Runner(parallel=2)
        iterator = runner.iter_runs(SWEEP, tuple(sweep_seeds(3)))
        next(iterator)
        assert runner._pool is not None
        iterator.close()
        assert runner._pool is None
        # The runner stays usable: the next sweep recreates the pool.
        results = runner.run(SWEEP[:1], (DEFAULT_SEED,))
        assert results and results[0].ok
        runner.close()


# ----------------------------------------------------------------------
# Fuzz corpus persistence
# ----------------------------------------------------------------------
class TestCorpus:
    RECORD = None  # built lazily: CorpusRecord import stays local to the test

    def _record(self, entry_fp="a" * 64, scenario="fuzz:binary+none+partition+n4t1"):
        from repro.store import CorpusRecord

        return CorpusRecord(
            entry_fp=entry_fp,
            scenario=scenario,
            seed=DEFAULT_SEED,
            novel=True,
            violation=False,
            score=3,
            entry={"mutations": [["param", "gst", 5.0]], "coverage": ["site:a", "site:b"]},
        )

    def test_put_get_roundtrip_and_persistence(self, tmp_path):
        db = tmp_path / "runs.db"
        record = self._record()
        with RunStore(db) as store:
            assert store.get_corpus(record.entry_fp) is None
            store.put_corpus(record)
            assert store.get_corpus(record.entry_fp) == record  # pre-flush
        with RunStore(db) as store:
            assert store.get_corpus(record.entry_fp) == record  # from disk
            assert store.count_corpus() == 1
            assert list(store.iter_corpus()) == [record]
            assert list(store.iter_corpus(scenario=record.scenario)) == [record]
            assert list(store.iter_corpus(scenario="other")) == []
            assert store.stats.corpus_hits == 1 and store.stats.corpus_misses == 0

    def test_corpus_is_partitioned_by_code_fingerprint(self, tmp_path):
        db = tmp_path / "runs.db"
        record = self._record()
        with RunStore(db, code_fp="older-code") as store:
            store.put_corpus(record)
        with RunStore(db) as store:
            assert store.get_corpus(record.entry_fp) is None
            assert store.count_corpus() == 0

    def test_vacuum_stale_drops_stale_corpus_rows(self, tmp_path):
        db = tmp_path / "runs.db"
        with RunStore(db, code_fp="older-code") as store:
            store.put_corpus(self._record(entry_fp="b" * 64))
        with RunStore(db) as store:
            store.put_corpus(self._record(entry_fp="c" * 64))
            store.vacuum_stale()
            assert store.count_corpus() == 1
        with RunStore(db, code_fp="older-code") as store:
            assert store.count_corpus() == 0


# ----------------------------------------------------------------------
# Close-time flush failures are surfaced, not swallowed
# ----------------------------------------------------------------------
class TestCloseFlushFailure:
    def test_close_surfaces_flush_failure_and_stays_open(self, tmp_path):
        from repro.store import StoreFlushError

        db = tmp_path / "runs.db"
        store = RunStore(db)
        store.put(SWEEP[0], execute_run(SWEEP[0], DEFAULT_SEED))
        assert store.pending_count == 1
        # Sabotage the schema out from under the final flush.
        store._conn.execute("ALTER TABLE runs RENAME TO runs_hidden")
        with pytest.raises(StoreFlushError, match="failed to flush 1 pending"):
            store.close()
        # The store is NOT closed and the record is still pending: the caller
        # owns the data and may repair and retry instead of losing the tail.
        assert store.pending_count == 1
        store._conn.execute("ALTER TABLE runs_hidden RENAME TO runs")
        store.close()  # the retry flushes and really closes
        with RunStore(db) as reopened:
            assert reopened.get(SWEEP[0], DEFAULT_SEED) is not None

    def test_clean_close_is_still_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        store.put(SWEEP[0], execute_run(SWEEP[0], DEFAULT_SEED))
        store.close()
        store.close()  # no error, no double flush
        # The in-memory cache may still answer, but anything needing the
        # connection reports the closed store instead of resurrecting it.
        with pytest.raises(RuntimeError):
            store.get(SWEEP[1], DEFAULT_SEED)
