"""Tests for triviality (Theorems 1-2) and the similarity condition C_S (Definition 2)."""

import pytest

from repro.core import (
    ConstantValidity,
    ConvexHullValidity,
    CorrectProposalValidity,
    FreeValidity,
    InputConfiguration,
    StrongValidity,
    SystemConfig,
    TableValidity,
    WeakValidity,
    check_similarity_condition,
    check_triviality,
    enumerate_input_configurations,
    enumerate_minimal_configurations,
    is_trivial,
    satisfies_similarity_condition,
    similar,
    similarity_intersection,
)

BINARY = [0, 1]
SYSTEM_OK = SystemConfig(n=4, t=1)
SYSTEM_WEAK = SystemConfig(n=3, t=1)


class TestTriviality:
    def test_constant_validity_is_trivial(self):
        result = check_triviality(ConstantValidity(0, output_domain=BINARY), SYSTEM_OK, BINARY)
        assert result.trivial
        assert result.witness == 0
        assert result.always_admissible == frozenset({0})
        assert result.always_admissible_procedure() == 0

    def test_free_validity_is_trivial(self):
        result = check_triviality(FreeValidity(BINARY), SYSTEM_OK, BINARY)
        assert result.trivial
        assert result.always_admissible == frozenset(BINARY)

    def test_strong_validity_is_non_trivial(self):
        result = check_triviality(StrongValidity(BINARY), SYSTEM_OK, BINARY)
        assert not result.trivial
        assert result.witness is None
        with pytest.raises(ValueError):
            result.always_admissible_procedure()

    def test_weak_validity_is_non_trivial(self):
        assert not is_trivial(WeakValidity(SYSTEM_OK, BINARY), SYSTEM_OK, BINARY)

    def test_correct_proposal_is_non_trivial(self):
        assert not is_trivial(CorrectProposalValidity(BINARY), SYSTEM_OK, BINARY)

    def test_configuration_count_reported(self):
        result = check_triviality(FreeValidity(BINARY), SYSTEM_OK, BINARY)
        assert result.configurations_checked == len(
            list(enumerate_input_configurations(SYSTEM_OK, BINARY))
        )

    def test_output_domain_defaults_to_property_domain(self):
        prop = ConstantValidity("x", output_domain=["x", "y"])
        result = check_triviality(prop, SYSTEM_OK, input_domain=["x", "y"])
        assert result.trivial and result.witness == "x"


class TestSimilarityIntersection:
    def test_intersection_for_unanimous_configuration(self):
        prop = StrongValidity(BINARY)
        config = InputConfiguration.unanimous([0, 1, 2], 1)
        intersection = similarity_intersection(prop, config, SYSTEM_OK, BINARY, BINARY)
        assert intersection == frozenset({1})

    def test_intersection_is_subset_of_own_admissible_set(self):
        prop = StrongValidity(BINARY)
        for config in enumerate_minimal_configurations(SYSTEM_OK, BINARY):
            intersection = similarity_intersection(prop, config, SYSTEM_OK, BINARY, BINARY)
            assert intersection <= prop.admissible_values(config, BINARY)


class TestSimilarityCondition:
    def test_strong_validity_satisfies_cs_when_n_gt_3t(self):
        result = check_similarity_condition(StrongValidity(BINARY), SYSTEM_OK, BINARY)
        assert result.holds
        assert result.minimal_configurations_checked == 4 * 2**3
        assert len(result.lambda_table) == result.minimal_configurations_checked

    def test_weak_validity_satisfies_cs_even_when_n_le_3t(self):
        # The paper notes C_S is necessary for all n, t but not sufficient for n <= 3t:
        # Weak Validity satisfies C_S yet is unsolvable with n = 3t.
        assert satisfies_similarity_condition(WeakValidity(SYSTEM_WEAK, BINARY), SYSTEM_WEAK, BINARY)

    def test_correct_proposal_fails_cs_with_large_domain(self):
        domain = [0, 1, 2]
        result = check_similarity_condition(CorrectProposalValidity(domain), SYSTEM_OK, domain)
        assert not result.holds
        assert result.counterexample is not None
        assert not result.lambda_table
        with pytest.raises(ValueError):
            result.lambda_function()

    def test_correct_proposal_satisfies_cs_with_binary_domain(self):
        assert satisfies_similarity_condition(CorrectProposalValidity(BINARY), SYSTEM_OK, BINARY)

    def test_lambda_values_are_admissible_for_all_similar_configurations(self):
        prop = StrongValidity(BINARY)
        result = check_similarity_condition(prop, SYSTEM_OK, BINARY)
        lambda_fn = result.lambda_function()
        all_configs = list(enumerate_input_configurations(SYSTEM_OK, BINARY))
        for config, chosen in result.lambda_table.items():
            assert chosen == lambda_fn(config)
            for candidate in all_configs:
                if similar(config, candidate):
                    assert prop.is_admissible(candidate, chosen)

    def test_lambda_function_rejects_unknown_configuration(self):
        result = check_similarity_condition(StrongValidity(BINARY), SYSTEM_OK, BINARY)
        lambda_fn = result.lambda_function()
        oversized = InputConfiguration.unanimous([0, 1, 2, 3], 0)
        with pytest.raises(KeyError):
            lambda_fn(oversized)

    def test_convex_hull_satisfies_cs(self):
        domain = [0, 1, 2]
        assert satisfies_similarity_condition(ConvexHullValidity(domain), SYSTEM_OK, domain)

    def test_table_validity_with_forced_conflict_fails_cs(self):
        # Build a pathological property: two similar minimal configurations with
        # disjoint admissible sets.
        system = SystemConfig(n=4, t=1)
        base = InputConfiguration.from_mapping({0: 0, 1: 0, 2: 0})
        overlapping = InputConfiguration.from_mapping({0: 0, 1: 0, 3: 0})
        table = {base: {0}, overlapping: {1}}
        prop = TableValidity(table, output_domain=BINARY, name="conflict", default_all=True)
        result = check_similarity_condition(prop, system, BINARY)
        assert not result.holds
