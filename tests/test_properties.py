"""Tests for the named validity properties (Section 3.3 and Section 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantValidity,
    ConvexHullValidity,
    CorrectProposalValidity,
    FreeValidity,
    InputConfiguration,
    IntervalValidity,
    MedianValidity,
    StrongValidity,
    SystemConfig,
    VectorValidity,
    WeakValidity,
    standard_properties,
)


def cfg(mapping):
    return InputConfiguration.from_mapping(mapping)


SYSTEM = SystemConfig(n=4, t=1)


class TestStrongValidity:
    def test_unanimous_forces_value(self):
        prop = StrongValidity()
        unanimous = cfg({0: "v", 1: "v", 2: "v"})
        assert prop.is_admissible(unanimous, "v")
        assert not prop.is_admissible(unanimous, "w")

    def test_non_unanimous_allows_everything(self):
        prop = StrongValidity()
        mixed = cfg({0: "v", 1: "w", 2: "v"})
        assert prop.is_admissible(mixed, "anything")

    def test_admissible_values_with_domain(self):
        prop = StrongValidity(output_domain=["v", "w"])
        assert prop.admissible_values(cfg({0: "v", 1: "v"})) == frozenset({"v"})
        assert prop.admissible_values(cfg({0: "v", 1: "w"})) == frozenset({"v", "w"})


class TestWeakValidity:
    def test_only_full_unanimous_configurations_constrain(self):
        prop = WeakValidity(SYSTEM)
        full_unanimous = cfg({0: 1, 1: 1, 2: 1, 3: 1})
        assert prop.is_admissible(full_unanimous, 1)
        assert not prop.is_admissible(full_unanimous, 2)

    def test_partial_unanimous_configuration_is_unconstrained(self):
        prop = WeakValidity(SYSTEM)
        partial = cfg({0: 1, 1: 1, 2: 1})
        assert prop.is_admissible(partial, 2)

    def test_full_mixed_configuration_is_unconstrained(self):
        prop = WeakValidity(SYSTEM)
        mixed = cfg({0: 1, 1: 1, 2: 1, 3: 2})
        assert prop.is_admissible(mixed, 7)

    def test_weak_is_weaker_than_strong(self):
        strong, weak = StrongValidity(), WeakValidity(SYSTEM)
        for config in [cfg({0: 1, 1: 1, 2: 1}), cfg({0: 1, 1: 1, 2: 1, 3: 1}), cfg({0: 1, 1: 2, 2: 1})]:
            for value in [1, 2, 3]:
                if strong.is_admissible(config, value):
                    assert weak.is_admissible(config, value)


class TestCorrectProposalValidity:
    def test_only_proposed_values_admissible(self):
        prop = CorrectProposalValidity()
        config = cfg({0: "a", 1: "b", 2: "a"})
        assert prop.is_admissible(config, "a")
        assert prop.is_admissible(config, "b")
        assert not prop.is_admissible(config, "c")


class TestMedianValidity:
    def test_radius_zero_pins_the_median(self):
        prop = MedianValidity(radius=0)
        config = cfg({0: 1, 1: 5, 2: 9})
        assert prop.is_admissible(config, 5)
        assert not prop.is_admissible(config, 1)
        assert not prop.is_admissible(config, 9)

    def test_radius_allows_a_rank_window(self):
        prop = MedianValidity(radius=1)
        config = cfg({0: 1, 1: 5, 2: 9})
        assert prop.is_admissible(config, 3)
        assert prop.is_admissible(config, 9)
        assert not prop.is_admissible(config, 0)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            MedianValidity(radius=-1)


class TestIntervalValidity:
    def test_window_around_kth_smallest(self):
        prop = IntervalValidity(k=2, radius=1)
        config = cfg({0: 10, 1: 20, 2: 30, 3: 40})
        assert prop.is_admissible(config, 10)
        assert prop.is_admissible(config, 25)
        assert prop.is_admissible(config, 30)
        assert not prop.is_admissible(config, 45)

    def test_clamping_at_boundaries(self):
        prop = IntervalValidity(k=1, radius=0)
        config = cfg({0: 10, 1: 20, 2: 30})
        assert prop.is_admissible(config, 10)
        assert not prop.is_admissible(config, 20)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            IntervalValidity(k=0, radius=1)
        with pytest.raises(ValueError):
            IntervalValidity(k=1, radius=-1)


class TestConvexHullValidity:
    def test_values_inside_hull(self):
        prop = ConvexHullValidity()
        config = cfg({0: 10, 1: 30, 2: 20})
        assert prop.is_admissible(config, 10)
        assert prop.is_admissible(config, 25)
        assert prop.is_admissible(config, 30)
        assert not prop.is_admissible(config, 9)
        assert not prop.is_admissible(config, 31)

    def test_single_value_hull(self):
        prop = ConvexHullValidity()
        config = cfg({0: 5, 1: 5})
        assert prop.is_admissible(config, 5)
        assert not prop.is_admissible(config, 6)


class TestTrivialProperties:
    def test_constant_validity(self):
        prop = ConstantValidity(constant=42, output_domain=[41, 42, 43])
        config = cfg({0: 1, 1: 2, 2: 3})
        assert prop.is_admissible(config, 42)
        assert not prop.is_admissible(config, 41)

    def test_free_validity(self):
        prop = FreeValidity(output_domain=[0, 1])
        config = cfg({0: 1, 1: 0})
        assert prop.is_admissible(config, 0)
        assert prop.is_admissible(config, "whatever")


class TestVectorValidity:
    def test_vector_must_match_correct_proposals(self):
        prop = VectorValidity(SYSTEM)
        execution_config = cfg({0: "a", 1: "b", 2: "c"})
        good_vector = cfg({0: "a", 1: "b", 3: "z"})
        bad_vector = cfg({0: "a", 1: "WRONG", 3: "z"})
        assert prop.is_admissible(execution_config, good_vector)
        assert not prop.is_admissible(execution_config, bad_vector)

    def test_vector_must_have_quorum_size(self):
        prop = VectorValidity(SYSTEM)
        execution_config = cfg({0: "a", 1: "b", 2: "c"})
        undersized = cfg({0: "a", 1: "b"})
        assert not prop.is_admissible(execution_config, undersized)

    def test_non_configuration_values_rejected(self):
        prop = VectorValidity(SYSTEM)
        assert not prop.is_admissible(cfg({0: "a", 1: "b", 2: "c"}), "not a vector")


class TestStandardPropertiesFactory:
    def test_contains_expected_keys(self):
        props = standard_properties(SYSTEM, output_domain=[0, 1])
        for key in ["strong", "weak", "correct-proposal", "median", "interval", "convex-hull", "constant", "free"]:
            assert key in props

    def test_every_property_is_non_empty_on_sample_configs(self):
        props = standard_properties(SYSTEM, output_domain=[0, 1, 2])
        sample = [cfg({0: 0, 1: 1, 2: 2}), cfg({0: 1, 1: 1, 2: 1, 3: 1})]
        for prop in props.values():
            assert prop.check_non_empty(sample) is None


proposals = st.dictionaries(
    keys=st.integers(min_value=0, max_value=3),
    values=st.integers(min_value=0, max_value=4),
    min_size=3,
    max_size=4,
)


class TestPropertyInvariants:
    @given(proposals)
    @settings(max_examples=100)
    def test_unanimous_proposal_always_admissible_for_strong(self, mapping):
        config = InputConfiguration.from_mapping(mapping)
        prop = StrongValidity()
        unanimous = config.unanimous_value()
        if unanimous is not None:
            assert prop.is_admissible(config, unanimous)

    @given(proposals)
    @settings(max_examples=100)
    def test_every_proposal_admissible_for_convex_hull(self, mapping):
        config = InputConfiguration.from_mapping(mapping)
        prop = ConvexHullValidity()
        for value in config.distinct_proposals():
            assert prop.is_admissible(config, value)

    @given(proposals)
    @settings(max_examples=100)
    def test_correct_proposal_admits_exactly_the_proposals(self, mapping):
        config = InputConfiguration.from_mapping(mapping)
        prop = CorrectProposalValidity()
        admissible = prop.admissible_values(config, output_domain=range(0, 5))
        assert admissible == config.distinct_proposals()
