"""Tests for the closed-form Lambda functions, cross-checked against the definition.

Every closed form must satisfy the similarity-condition requirement: for each
vector (minimal configuration) the chosen value is admissible for every
similar configuration.  We verify this both on hand-picked vectors and by the
exhaustive ``verify_lambda_function`` check over small finite domains.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConvexHullValidity,
    CorrectProposalValidity,
    InputConfiguration,
    LambdaUndefinedError,
    MedianValidity,
    IntervalValidity,
    StrongValidity,
    SystemConfig,
    WeakValidity,
    constant_lambda,
    convex_hull_lambda,
    correct_proposal_lambda,
    free_validity_lambda,
    identity_lambda,
    interval_validity_lambda,
    median_validity_lambda,
    standard_lambda_functions,
    strong_validity_lambda,
    verify_lambda_function,
    weak_validity_lambda,
)

SYSTEM = SystemConfig(n=4, t=1)
SYSTEM7 = SystemConfig(n=7, t=2)
BINARY = [0, 1]


def vector(mapping):
    return InputConfiguration.from_mapping(mapping)


class TestStrongValidityLambda:
    def test_unanimous_vector_returns_the_value(self):
        lam = strong_validity_lambda(SYSTEM)
        assert lam(vector({0: "v", 1: "v", 2: "v"})) == "v"

    def test_value_reaching_threshold_is_forced(self):
        lam = strong_validity_lambda(SYSTEM)
        assert lam(vector({0: "v", 1: "v", 2: "w"})) == "v"

    def test_no_threshold_value_returns_some_proposal(self):
        lam = strong_validity_lambda(SYSTEM7)
        result = lam(vector({0: 1, 1: 2, 2: 3, 3: 4, 4: 5}))
        assert result in {1, 2, 3, 4, 5}

    def test_exhaustive_verification_against_definition(self):
        assert verify_lambda_function(StrongValidity(BINARY), strong_validity_lambda(SYSTEM), SYSTEM, BINARY) is None

    def test_two_threshold_values_raise_when_n_le_3t(self):
        bad_system = SystemConfig(n=6, t=2)
        lam = strong_validity_lambda(bad_system)
        with pytest.raises(LambdaUndefinedError):
            lam(vector({0: "a", 1: "a", 2: "b", 3: "b"}))


class TestWeakValidityLambda:
    def test_unanimous_vector_returns_the_value(self):
        lam = weak_validity_lambda(SYSTEM)
        assert lam(vector({0: 9, 1: 9, 2: 9})) == 9

    def test_mixed_vector_returns_a_proposal(self):
        lam = weak_validity_lambda(SYSTEM)
        assert lam(vector({0: 1, 1: 2, 2: 3})) in {1, 2, 3}

    def test_exhaustive_verification_against_definition(self):
        prop = WeakValidity(SYSTEM, BINARY)
        assert verify_lambda_function(prop, weak_validity_lambda(SYSTEM), SYSTEM, BINARY) is None


class TestCorrectProposalLambda:
    def test_majority_value_is_chosen(self):
        lam = correct_proposal_lambda(SYSTEM)
        assert lam(vector({0: "a", 1: "a", 2: "b"})) == "a"

    def test_raises_when_no_value_is_frequent_enough(self):
        lam = correct_proposal_lambda(SYSTEM7)
        with pytest.raises(LambdaUndefinedError):
            lam(vector({0: 1, 1: 2, 2: 3, 3: 4, 4: 5}))

    def test_exhaustive_verification_against_definition_binary(self):
        prop = CorrectProposalValidity(BINARY)
        assert verify_lambda_function(prop, correct_proposal_lambda(SYSTEM), SYSTEM, BINARY) is None


class TestConvexHullLambda:
    def test_returns_t_plus_first_smallest(self):
        lam = convex_hull_lambda(SYSTEM7)
        assert lam(vector({0: 10, 1: 20, 2: 30, 3: 40, 4: 50})) == 30

    def test_exhaustive_verification_against_definition(self):
        domain = [0, 1, 2]
        prop = ConvexHullValidity(domain)
        assert verify_lambda_function(prop, convex_hull_lambda(SYSTEM), SYSTEM, domain) is None


class TestMedianAndIntervalLambdas:
    def test_median_lambda_returns_vector_median(self):
        lam = median_validity_lambda(SYSTEM7)
        assert lam(vector({0: 1, 1: 3, 2: 5, 3: 7, 4: 9})) == 5

    def test_median_lambda_rejects_too_small_radius(self):
        with pytest.raises(LambdaUndefinedError):
            median_validity_lambda(SYSTEM, radius=1)

    def test_median_lambda_exhaustive_verification(self):
        domain = [0, 1, 2]
        prop = MedianValidity(radius=2 * SYSTEM.t, output_domain=domain)
        assert verify_lambda_function(prop, median_validity_lambda(SYSTEM), SYSTEM, domain) is None

    def test_interval_lambda_returns_kth_smallest(self):
        lam = interval_validity_lambda(SYSTEM7, k=2)
        assert lam(vector({0: 10, 1: 40, 2: 20, 3: 30, 4: 50})) == 20

    def test_interval_lambda_parameter_validation(self):
        with pytest.raises(LambdaUndefinedError):
            interval_validity_lambda(SYSTEM, k=1, radius=0)
        with pytest.raises(ValueError):
            interval_validity_lambda(SYSTEM, k=0)
        with pytest.raises(LambdaUndefinedError):
            interval_validity_lambda(SYSTEM, k=SYSTEM.n - 2 * SYSTEM.t + 1)

    def test_interval_lambda_exhaustive_verification(self):
        domain = [0, 1, 2]
        prop = IntervalValidity(k=SYSTEM.t + 1, radius=SYSTEM.t, output_domain=domain)
        lam = interval_validity_lambda(SYSTEM, k=SYSTEM.t + 1)
        assert verify_lambda_function(prop, lam, SYSTEM, domain) is None


class TestTrivialAndIdentityLambdas:
    def test_constant_lambda(self):
        lam = constant_lambda("fixed")
        assert lam(vector({0: 1, 1: 2, 2: 3})) == "fixed"

    def test_free_lambda_returns_a_proposal(self):
        lam = free_validity_lambda()
        assert lam(vector({0: 5, 1: 7, 2: 5})) in {5, 7}

    def test_identity_lambda_returns_the_vector(self):
        lam = identity_lambda()
        v = vector({0: 1, 1: 2, 2: 3})
        assert lam(v) is v


class TestStandardLambdaFactory:
    def test_contains_expected_keys(self):
        lams = standard_lambda_functions(SYSTEM)
        assert set(lams) >= {"strong", "weak", "correct-proposal", "convex-hull", "median", "interval", "free", "vector"}

    def test_all_callable_on_a_quorum_vector(self):
        lams = standard_lambda_functions(SYSTEM7)
        quorum_vector = vector({0: 1, 1: 1, 2: 1, 3: 2, 4: 2})
        for key, lam in lams.items():
            result = lam(quorum_vector)
            assert result is not None


@st.composite
def quorum_vectors(draw, system=SYSTEM7, max_value=4):
    processes = draw(
        st.sets(st.sampled_from(range(system.n)), min_size=system.quorum, max_size=system.quorum)
    )
    values = st.integers(min_value=0, max_value=max_value)
    return InputConfiguration.from_mapping({p: draw(values) for p in processes})


class TestLambdaRandomisedInvariants:
    @given(quorum_vectors())
    @settings(max_examples=100)
    def test_strong_lambda_is_admissible_for_the_vector_itself(self, vec):
        lam = strong_validity_lambda(SYSTEM7)
        assert StrongValidity().is_admissible(vec, lam(vec))

    @given(quorum_vectors())
    @settings(max_examples=100)
    def test_convex_hull_lambda_is_admissible_for_the_vector_itself(self, vec):
        lam = convex_hull_lambda(SYSTEM7)
        assert ConvexHullValidity().is_admissible(vec, lam(vec))

    @given(quorum_vectors(max_value=1))
    @settings(max_examples=100)
    def test_correct_proposal_lambda_binary_always_defined(self, vec):
        lam = correct_proposal_lambda(SYSTEM7)
        assert lam(vec) in vec.distinct_proposals()
