"""Golden-trace determinism tests for the experiment runner.

The repo-wide guarantee the sweeps rely on: a run is a pure function of its
``(scenario, seed)`` pair.  These tests pin that down at the byte level —
identical pairs produce byte-identical ``RunResult`` records whether the
sweep is executed serially, serially again, or fanned out over a
``multiprocessing`` pool — and cover the runner's ordering, timeout/error
records, aggregation and baseline-diff behaviour.
"""

import json

import pytest

from repro.experiments import (
    DEFAULT_SEED,
    Runner,
    RunResult,
    aggregate,
    check_baseline,
    diff_against_baseline,
    execute_run,
    load_baseline,
    make_scenario,
    run_matrix,
    summaries_to_json,
    sweep_seeds,
    write_baseline,
)

# A deliberately heterogeneous slice of the matrix: three protocols, three
# adversaries, both delay models.
SWEEP = [
    make_scenario("universal-authenticated", "silent", "synchronous"),
    make_scenario("universal-authenticated", "crash", "eventual"),
    make_scenario("binary", "dropping", "eventual"),
    make_scenario("quad", "silent", "synchronous"),
]
SEEDS = (DEFAULT_SEED, DEFAULT_SEED + 1)


def canonical_trace(results):
    return "\n".join(result.canonical_json() for result in results)


class TestDeterminism:
    def test_same_pair_reruns_byte_identical(self):
        for spec in SWEEP:
            first = execute_run(spec, DEFAULT_SEED)
            second = execute_run(spec, DEFAULT_SEED)
            assert first == second
            assert first.canonical_json() == second.canonical_json()

    def test_serial_sweep_reruns_byte_identical(self):
        first = Runner().run(SWEEP, SEEDS)
        second = Runner().run(SWEEP, SEEDS)
        assert canonical_trace(first) == canonical_trace(second)

    def test_parallel_sweep_byte_identical_to_serial(self):
        serial = Runner().run(SWEEP, SEEDS)
        parallel = Runner(parallel=3).run(SWEEP, SEEDS)
        assert canonical_trace(parallel) == canonical_trace(serial)

    def test_spawn_pool_byte_identical_to_serial(self):
        # The spawn fallback boots fresh interpreters whose hash seed would
        # otherwise be randomised per worker; the runner pins PYTHONHASHSEED
        # so the guarantee holds on spawn-only platforms too.
        sweep = SWEEP[:2]
        serial = Runner().run(sweep, SEEDS)
        spawned = Runner(parallel=2, start_method="spawn").run(sweep, SEEDS)
        assert canonical_trace(spawned) == canonical_trace(serial)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ValueError):
            Runner(parallel=2, start_method="teleport")

    def test_different_seeds_differ(self):
        spec = SWEEP[0]
        runs = {seed: execute_run(spec, seed) for seed in sweep_seeds(4)}
        latencies = {run.decision_latency for run in runs.values()}
        assert len(latencies) > 1, "seeds must actually steer the execution"

    def test_canonical_json_is_valid_sorted_json(self):
        result = execute_run(SWEEP[0], DEFAULT_SEED)
        payload = json.loads(result.canonical_json())
        assert list(payload) == sorted(payload)
        assert payload["scenario"] == SWEEP[0].name
        assert payload["seed"] == DEFAULT_SEED


class TestRunner:
    def test_results_in_scenario_times_seed_order(self):
        results = Runner(parallel=2).run(SWEEP, SEEDS)
        expected = [(spec.name, seed) for spec in SWEEP for seed in SEEDS]
        assert [(result.scenario, result.seed) for result in results] == expected

    def test_all_runs_ok_on_the_healthy_sweep(self):
        results = run_matrix(SWEEP, SEEDS, parallel=2)
        assert all(result.ok for result in results)
        assert all(result.completed and result.agreement and result.validity_ok for result in results)

    def test_empty_sweep(self):
        assert Runner(parallel=4).run([], SEEDS) == []

    def test_negative_parallel_rejected(self):
        with pytest.raises(ValueError):
            Runner(parallel=-1)

    def test_exhausted_event_budget_is_an_error_record_not_a_crash(self):
        starved = SWEEP[0].with_(name="starved", max_events=5)
        serial = Runner().run([starved], SEEDS)
        parallel = Runner(parallel=2).run([starved], SEEDS)
        for result in serial:
            assert result.error is not None and "SimulationError" in result.error
            assert not result.completed and not result.ok
        assert canonical_trace(serial) == canonical_trace(parallel)

    def test_wall_clock_timeout_yields_error_record(self):
        # The signature-free backend costs O(n^4) messages, so a large system
        # takes many seconds of wall clock; the timeout must cut it short.
        spec = make_scenario(
            "universal-non-authenticated", "silent", "synchronous", n=31, t=10
        ).with_(name="slow", max_events=10**9)
        results = Runner(timeout=0.1).run([spec], (DEFAULT_SEED,))
        assert len(results) == 1
        assert results[0].error is not None
        assert "timeout" in results[0].error
        # A timed-out run has no verdict: it must not masquerade as a clean
        # fast run with agreement=True / validity_ok=True / latency=0.0.
        assert not results[0].completed
        assert results[0].agreement is None
        assert results[0].validity_ok is None
        assert results[0].decision_latency is None
        assert not results[0].ok

    def test_timeout_is_authoritative_even_if_the_alarm_is_swallowed(self, monkeypatch):
        # execute_run guards _RunTimeout through its own except clauses, but a
        # protocol/checker bug could still wrap a broad ``except Exception``
        # around the alarm and return a fabricated clean record after the
        # deadline.  The deadline re-check must report the timeout anyway.
        import time as time_module

        from repro.experiments import runner as runner_module
        from repro.experiments.runner import TIMEOUT_ERROR_PREFIX, _execute_with_timeout

        spec = SWEEP[0]
        fabricated = execute_run(spec, DEFAULT_SEED)
        assert fabricated.ok

        def swallowing_execute(spec_arg, seed_arg):
            deadline = time_module.monotonic() + 0.3
            while time_module.monotonic() < deadline:
                try:
                    time_module.sleep(0.02)
                except Exception:
                    pass  # the broad except that eats the alarm
            return fabricated

        monkeypatch.setattr(runner_module, "execute_run", swallowing_execute)
        result = _execute_with_timeout((spec, DEFAULT_SEED, 0.05))
        assert result.error is not None and result.error.startswith(TIMEOUT_ERROR_PREFIX)
        assert result.agreement is None and not result.completed


class TestAggregation:
    def test_summary_counts_and_determinism(self):
        results = Runner().run(SWEEP, SEEDS)
        summaries = aggregate(results)
        assert set(summaries) == {spec.name for spec in SWEEP}
        for spec in SWEEP:
            summary = summaries[spec.name]
            assert summary.runs == len(SEEDS)
            assert summary.ok
            assert summary.messages.minimum <= summary.messages.mean <= summary.messages.maximum
        assert summaries_to_json(summaries) == summaries_to_json(aggregate(Runner(parallel=2).run(SWEEP, SEEDS)))

    def test_error_runs_are_counted_not_averaged(self):
        starved = SWEEP[0].with_(name="starved", max_events=5)
        summaries = aggregate(Runner().run([starved], SEEDS))
        summary = summaries["starved"]
        assert summary.errors == len(SEEDS)
        assert not summary.ok
        assert summary.messages.mean == 0.0

    def test_timed_out_runs_excluded_from_agreement_validity_latency(self):
        from repro.experiments.runner import _timeout_result

        healthy = execute_run(SWEEP[0], DEFAULT_SEED)
        timed_out = _timeout_result(SWEEP[0], DEFAULT_SEED + 1, timeout=0.1)
        summaries = aggregate([healthy, timed_out])
        summary = summaries[SWEEP[0].name]
        assert summary.runs == 2
        assert summary.errors == 1
        assert summary.agreement_violations == 0
        assert summary.validity_violations == 0
        # The timeout's placeholder latency must not drag the mean toward 0.
        assert summary.latency.mean == healthy.decision_latency
        assert summary.latency.minimum == healthy.decision_latency

    def test_horizon_limited_runs_excluded_from_latency(self):
        stunted = SWEEP[0].with_(name="stunted", time_limit=0.05)
        summaries = aggregate(Runner().run([stunted], SEEDS))
        summary = summaries["stunted"]
        assert summary.errors == 0
        assert summary.incomplete == len(SEEDS)
        assert not summary.ok
        # No run completed, so the latency distribution is empty, not a pile
        # of fake zero-latency "fast" runs.
        assert summary.latency.mean == 0.0 and summary.latency.maximum == 0.0


class TestStreamingAggregatorEdgeCases:
    """The streaming fold must match batch ``aggregate()`` exactly, even on
    degenerate sweeps: no runs at all, runs with no verdict on any property,
    and records from many scenarios arriving interleaved."""

    def test_empty_sweep(self):
        from repro.experiments import StreamingAggregator

        aggregator = StreamingAggregator()
        assert aggregator.summaries() == {}
        assert aggregate([]) == {}
        assert summaries_to_json(aggregator.summaries()) == summaries_to_json(aggregate([]))

    def test_all_timeout_scenario_every_stat_none(self):
        from repro.experiments import StreamingAggregator
        from repro.experiments.runner import _timeout_result

        spec = SWEEP[0]
        results = [_timeout_result(spec, seed, timeout=0.1) for seed in SEEDS]
        for result in results:  # the premise: a timed-out run has no verdict
            assert result.agreement is None
            assert result.validity_ok is None
            assert result.decision_latency is None
        aggregator = StreamingAggregator()
        for result in results:
            aggregator.add(result)
        streamed = aggregator.summaries()
        assert streamed == aggregate(results)
        summary = streamed[spec.name]
        assert summary.runs == len(SEEDS)
        assert summary.errors == len(SEEDS)
        assert summary.agreement_violations == 0 and summary.validity_violations == 0
        # No finished run fed any distribution: all-zero, not fake fast runs.
        for distribution in (summary.messages, summary.words, summary.latency):
            assert (distribution.minimum, distribution.maximum, distribution.mean) == (0.0, 0.0, 0.0)

    def test_interleaved_multi_scenario_streams_match_batch(self):
        from repro.experiments import StreamingAggregator
        from repro.experiments.runner import _timeout_result

        results = Runner().run(SWEEP, SEEDS)
        results.append(_timeout_result(SWEEP[1], DEFAULT_SEED + 7, timeout=0.1))
        # Interleave across scenarios: s0-seed0, s1-seed0, ..., s0-seed1, ...
        interleaved = sorted(results, key=lambda result: (result.seed, result.scenario))
        assert [r.scenario for r in interleaved] != [r.scenario for r in results]
        aggregator = StreamingAggregator()
        for result in interleaved:
            aggregator.add(result)
        assert aggregator.summaries() == aggregate(results)
        assert summaries_to_json(aggregator.summaries()) == summaries_to_json(aggregate(results))


class TestBaseline:
    def test_roundtrip_no_regressions(self, tmp_path):
        results = Runner().run(SWEEP, SEEDS)
        summaries = aggregate(results)
        path = tmp_path / "baseline.json"
        write_baseline(path, summaries)
        assert load_baseline(path).keys() == summaries.keys()
        assert check_baseline(summaries, path) == []

    def test_complexity_regression_detected(self, tmp_path):
        summaries = aggregate(Runner().run(SWEEP, SEEDS))
        baseline = json.loads(summaries_to_json(summaries))["scenarios"]
        shrunk = dict(baseline)
        name = SWEEP[0].name
        shrunk[name] = dict(shrunk[name])
        shrunk[name]["messages"] = dict(shrunk[name]["messages"], mean=shrunk[name]["messages"]["mean"] / 2.0)
        regressions = diff_against_baseline(summaries, shrunk, relative_tolerance=0.2)
        assert any(name in regression and "messages" in regression for regression in regressions)

    def test_correctness_regression_detected(self):
        summaries = aggregate(Runner().run(SWEEP, SEEDS))
        baseline = json.loads(summaries_to_json(summaries))["scenarios"]
        summaries[SWEEP[0].name].errors += 1
        regressions = diff_against_baseline(summaries, baseline)
        assert any("errors" in regression for regression in regressions)

    def test_missing_scenario_detected(self):
        summaries = aggregate(Runner().run(SWEEP, SEEDS))
        baseline = json.loads(summaries_to_json(summaries))["scenarios"]
        del summaries[SWEEP[-1].name]
        regressions = diff_against_baseline(summaries, baseline)
        assert any("missing" in regression for regression in regressions)

    def test_improvements_are_not_regressions(self, tmp_path):
        summaries = aggregate(Runner().run(SWEEP, SEEDS))
        baseline = json.loads(summaries_to_json(summaries))["scenarios"]
        for stored in baseline.values():
            stored["messages"] = dict(stored["messages"], mean=stored["messages"]["mean"] * 10)
            stored["errors"] = 5
        assert diff_against_baseline(summaries, baseline) == []
