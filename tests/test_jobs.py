"""The job/session layer: specs, lifecycle, session ownership, teardown.

Covers the contracts the architecture hangs on: the lifecycle state machine
rejects illegal transitions; every job type round-trips through its wire
payload; one session runs sweep → analyze → fuzz on a single pool and store
(and a warm second submit executes nothing); and teardown is exception-safe
— the pool dies and the store flushes even when a job blows up mid-flight
or a streaming generator is abandoned.
"""

import pickle

import pytest

from repro.experiments import DEFAULT_SEED, make_scenario
from repro.jobs import (
    AnalyzeJob,
    CompareJob,
    EVENT_LOG,
    EVENT_PROGRESS,
    EVENT_STATUS,
    ExecutionSession,
    FuzzJob,
    JobLifecycle,
    JobSpecError,
    JobStatusError,
    ReportJob,
    SessionClosedError,
    STATUS_COMPLETE,
    STATUS_ERROR,
    STATUS_INITIALIZED,
    STATUS_NO_SOLUTION,
    STATUS_RUNNING,
    SweepJob,
    exit_code_for,
    job_from_payload,
    open_run_store,
    resolve_fuzz_bases,
    select_scenarios,
    specs_to_payloads,
    summary_status,
)
from repro.resilience import RetryPolicy
from repro.store import RunStore
from repro.store.store import StoreFlushError

SLICE = ["binary+silent+synchronous", "quad+silent+synchronous"]


def slice_payloads():
    return specs_to_payloads(select_scenarios(SLICE))


# ----------------------------------------------------------------------
# Lifecycle state machine
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_happy_path(self):
        lifecycle = JobLifecycle()
        assert lifecycle.status == STATUS_INITIALIZED
        assert not lifecycle.terminal
        lifecycle.transition(STATUS_RUNNING)
        lifecycle.transition(STATUS_COMPLETE)
        assert lifecycle.terminal

    @pytest.mark.parametrize("terminal", [STATUS_COMPLETE, STATUS_ERROR, STATUS_NO_SOLUTION])
    def test_terminal_states_are_frozen(self, terminal):
        lifecycle = JobLifecycle()
        lifecycle.transition(STATUS_RUNNING)
        lifecycle.transition(terminal)
        for target in (STATUS_INITIALIZED, STATUS_RUNNING, STATUS_COMPLETE, STATUS_ERROR):
            with pytest.raises(JobStatusError):
                lifecycle.transition(target)

    def test_cannot_complete_without_running(self):
        with pytest.raises(JobStatusError):
            JobLifecycle().transition(STATUS_COMPLETE)

    def test_cannot_skip_to_no_solution(self):
        with pytest.raises(JobStatusError):
            JobLifecycle().transition(STATUS_NO_SOLUTION)

    def test_unknown_status_rejected(self):
        lifecycle = JobLifecycle()
        with pytest.raises(JobStatusError):
            lifecycle.transition("Paused")

    def test_exit_codes(self):
        assert exit_code_for(STATUS_COMPLETE) == 0
        assert exit_code_for(STATUS_ERROR) == 1
        assert exit_code_for(STATUS_NO_SOLUTION) == 3
        with pytest.raises(JobStatusError):
            exit_code_for(STATUS_RUNNING)

    def test_summary_status_strings(self):
        assert summary_status(True) == "ok"
        assert summary_status(False) == "FAIL"


# ----------------------------------------------------------------------
# Spec round-trips: payload() → job_from_payload → identical spec
# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    def jobs(self, tmp_path):
        return [
            SweepJob(slice_payloads(), seeds=(7, 8), rerun=True, collect_records=True),
            AnalyzeJob(families=("named", "sampled"), cross_check_reference="ref.json"),
            FuzzJob(
                specs_to_payloads(resolve_fuzz_bases(["binary+none+partition"])),
                budget=9,
                fuzz_seed=3,
                shrink=False,
            ),
            ReportJob(scenarios=("a", "b"), protocols=("binary",), any_code=True),
            CompareJob(reference=str(tmp_path / "base.json"), scenarios=("a",), tolerance=0.5),
        ]

    def test_every_job_type_round_trips(self, tmp_path):
        for job in self.jobs(tmp_path):
            rebuilt = job_from_payload(job.payload())
            assert rebuilt == job
            assert rebuilt.fingerprint() == job.fingerprint()

    def test_fingerprints_are_distinct_and_content_addressed(self, tmp_path):
        fingerprints = {job.fingerprint() for job in self.jobs(tmp_path)}
        assert len(fingerprints) == len(self.jobs(tmp_path))
        assert SweepJob(slice_payloads()).fingerprint() == SweepJob(slice_payloads()).fingerprint()
        assert (
            SweepJob(slice_payloads()).fingerprint()
            != SweepJob(slice_payloads(), seeds=(5,)).fingerprint()
        )

    def test_jobs_are_picklable(self, tmp_path):
        for job in self.jobs(tmp_path):
            assert pickle.loads(pickle.dumps(job)) == job

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobSpecError, match="unknown job kind"):
            job_from_payload({"kind": "teleport"})

    def test_missing_fields_rejected(self):
        with pytest.raises(JobSpecError, match="missing or invalid"):
            job_from_payload({"kind": "sweep"})

    def test_invalid_specs_die_at_construction(self):
        with pytest.raises(JobSpecError, match="no scenarios"):
            SweepJob(())
        with pytest.raises(JobSpecError, match="repeats"):
            SweepJob(slice_payloads(), seeds=(5, 5))
        with pytest.raises(JobSpecError, match="at least 1"):
            FuzzJob(slice_payloads(), budget=0)
        with pytest.raises(JobSpecError, match="unknown property families"):
            AnalyzeJob(families=("named", "imagined"))
        with pytest.raises(JobSpecError, match="reference"):
            CompareJob(reference="")

    def test_unknown_fuzz_base_rejected(self):
        with pytest.raises(JobSpecError, match="unknown fuzz base"):
            resolve_fuzz_bases(["not-a-base"])


# ----------------------------------------------------------------------
# Session reuse: one pool + one store across sweep → analyze → fuzz
# ----------------------------------------------------------------------
class TestSessionReuse:
    def test_sweep_analyze_fuzz_share_resources(self, tmp_path):
        store_path = tmp_path / "runs.db"
        events = []
        with ExecutionSession(parallel=2, store_path=store_path) as session:
            sweep = session.submit(
                SweepJob(slice_payloads(), seeds=(DEFAULT_SEED,)), on_event=events.append
            )
            runner = session._runner
            store = session._store
            assert runner is not None and store is not None

            analyze = session.submit(AnalyzeJob(families=("named",)))
            fuzz = session.submit(
                FuzzJob(specs_to_payloads(resolve_fuzz_bases(["binary+none+partition"])), budget=6)
            )
            # One pool, one connection, across all three job types.
            assert session._runner is runner
            assert session._store is store

        assert sweep.status == STATUS_COMPLETE
        assert sweep.run_count == len(SLICE)
        assert not sweep.failures
        assert sweep.store_stats["stored"] == len(SLICE)
        assert analyze.status == STATUS_COMPLETE
        assert analyze.counts["total"] == len(analyze.verdicts)
        assert fuzz.status == STATUS_COMPLETE
        assert fuzz.report.candidates == 6

        statuses = [e.status for e in events if e.kind == EVENT_STATUS]
        assert statuses == [STATUS_INITIALIZED, STATUS_RUNNING, STATUS_COMPLETE]
        progress = [e for e in events if e.kind == EVENT_PROGRESS]
        assert [e.completed for e in progress] == [1, 2]
        assert all(e.total == len(SLICE) for e in progress)

    def test_warm_second_submit_executes_nothing(self, tmp_path):
        store_path = tmp_path / "runs.db"
        job = SweepJob(slice_payloads(), seeds=(DEFAULT_SEED, DEFAULT_SEED + 1))
        with ExecutionSession(store_path=store_path) as session:
            cold = session.submit(job)
            warm = session.submit(job)
        assert cold.store_stats["hits"] == 0
        assert cold.store_stats["stored"] == cold.run_count
        # Store counters are per-job deltas, so the warm submit proves itself.
        assert warm.store_stats["hits"] == warm.run_count
        assert warm.store_stats["misses"] == 0
        assert warm.store_stats["stored"] == 0

    def test_storeless_session_has_no_store(self):
        with ExecutionSession() as session:
            assert session.store is None
            assert not session.has_store
            outcome = session.submit(SweepJob(slice_payloads()))
        assert outcome.status == STATUS_COMPLETE
        assert outcome.store_stats is None

    def test_store_requiring_jobs_fail_without_store(self):
        with ExecutionSession() as session:
            with pytest.raises(JobSpecError, match="needs a session with a store"):
                session.submit(ReportJob())
            with pytest.raises(JobSpecError, match="needs a session with a store"):
                session.submit(CompareJob(reference="base.json"))

    def test_report_no_solution_on_empty_store(self, tmp_path):
        with ExecutionSession(store_path=tmp_path / "empty.db") as session:
            session.store  # create the store file
            outcome = session.submit(ReportJob())
        assert outcome.status == STATUS_NO_SOLUTION
        assert "no stored records" in outcome.message
        assert exit_code_for(outcome.status) == 3

    def test_unknown_job_type_is_spec_error(self):
        events = []
        with ExecutionSession() as session:
            with pytest.raises(JobSpecError, match="not a known job type"):
                session.submit(object(), on_event=events.append)
        assert [e.status for e in events] == [STATUS_INITIALIZED, STATUS_ERROR]

    def test_fuzz_log_events_stream(self, tmp_path):
        events = []
        with ExecutionSession(store_path=tmp_path / "fuzz.db") as session:
            session.submit(
                FuzzJob(specs_to_payloads(resolve_fuzz_bases(["binary+none+partition"])), budget=6),
                on_event=events.append,
            )
        logs = [e.message for e in events if e.kind == EVENT_LOG]
        assert logs, "fuzz progress lines should surface as log events"


# ----------------------------------------------------------------------
# Teardown guarantees
# ----------------------------------------------------------------------
class TestTeardown:
    def test_closed_session_refuses_work(self):
        session = ExecutionSession()
        session.close()
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.submit(SweepJob(slice_payloads()))
        with pytest.raises(SessionClosedError):
            session.runner
        session.close()  # idempotent

    def test_mid_job_exception_still_tears_down(self, tmp_path, monkeypatch):
        from repro.jobs import executor as executor_module

        def explode(*args, **kwargs):
            raise RuntimeError("kernel died")

        monkeypatch.setitem(executor_module._HANDLERS, SweepJob.kind, explode)
        events = []
        session = ExecutionSession(store_path=tmp_path / "runs.db")
        with pytest.raises(RuntimeError, match="kernel died"):
            with session:
                session.submit(SweepJob(slice_payloads()), on_event=events.append)
        assert session.closed
        assert session._runner is None and session._store is None
        # The event stream still records how the job ended.
        assert [e.status for e in events] == [STATUS_INITIALIZED, STATUS_RUNNING, STATUS_ERROR]

    def test_session_survives_job_error_until_closed(self, tmp_path):
        # A failing job must not poison the session: the next submit reuses
        # the same pool and store.
        with ExecutionSession(store_path=tmp_path / "runs.db") as session:
            with pytest.raises(JobSpecError):
                session.submit(AnalyzeJob(families=("named",), cross_check_reference="absent.json"))
            outcome = session.submit(SweepJob(slice_payloads()))
        assert outcome.status == STATUS_COMPLETE

    def test_abandoned_generator_then_close(self, tmp_path):
        # Abandon a streaming sweep mid-flight; closing the session must
        # still terminate the pool and flush the store without hanging.
        with ExecutionSession(parallel=2, store_path=tmp_path / "runs.db") as session:
            scenarios = select_scenarios(SLICE)
            iterator = session.runner.iter_runs(scenarios, [DEFAULT_SEED], store=session.store)
            next(iterator)
            del iterator
        with RunStore(tmp_path / "runs.db") as store:
            assert sum(1 for _ in store.iter_records()) >= 1

    def test_transient_flush_failure_absorbed_by_retry(self, tmp_path, monkeypatch):
        # A flush that fails once and then succeeds is invisible to the
        # caller: close() retries under the store's policy and returns.
        import sqlite3

        session = ExecutionSession(
            store_path=tmp_path / "runs.db",
            store_options={"retry_policy": RetryPolicy(max_attempts=3, backoff_base=0.0)},
        )
        session.submit(SweepJob(slice_payloads()))
        store = session._store
        original = store._flush_into
        calls = {"n": 0}

        def failing_flush_into(conn):
            calls["n"] += 1
            if calls["n"] == 1:
                raise sqlite3.OperationalError("database is locked")
            return original(conn)

        monkeypatch.setattr(store, "_flush_into", failing_flush_into)
        session.close()  # no raise: the retry absorbed the transient failure
        assert session._store is None
        assert calls["n"] == 2
        assert store.stats.flush_retries >= 1
        with RunStore(tmp_path / "runs.db") as reopened:
            assert sum(1 for _ in reopened.iter_records()) == len(SLICE)

    def test_flush_failure_keeps_store_for_retry(self, tmp_path, monkeypatch):
        # A persistent, non-spillworthy failure exhausts the retry budget
        # and surfaces as StoreFlushError naming the attempts spent; the
        # store reference is kept so a later close() can retry.
        import sqlite3

        session = ExecutionSession(
            store_path=tmp_path / "runs.db",
            store_options={"retry_policy": RetryPolicy(max_attempts=2, backoff_base=0.0)},
        )
        session.submit(SweepJob(slice_payloads()))
        store = session._store
        original = store._flush_into
        broken = {"on": True}

        def failing_flush_into(conn):
            if broken["on"]:
                raise sqlite3.OperationalError("no such table: runs")
            return original(conn)

        monkeypatch.setattr(store, "_flush_into", failing_flush_into)
        with pytest.raises(StoreFlushError, match=r"after 2 attempt\(s\)"):
            session.close()
        # Pool is gone, session is closed, but the store is kept for retry.
        assert session.closed
        assert session._runner is None
        assert session._store is store
        # No journal spill for a non-disk failure: the records stay pending.
        assert not store.journal_path.exists()
        broken["on"] = False
        session.close()  # retry succeeds and releases the store
        assert session._store is None

    def test_open_run_store_is_context_managed(self, tmp_path):
        path = tmp_path / "runs.db"
        with open_run_store(path) as store:
            assert isinstance(store, RunStore)
        # Reopening proves the connection was cleanly closed.
        with open_run_store(path) as store:
            assert store.stats.hits == 0
